// Package harness is the reproduction's Benchbase equivalent: it loads the
// benchmark datasets, runs the paper's measurement protocols (per-query
// response time with warm-up, §6.2; terminal-based average query latency,
// §6.3), and drives one experiment per figure/table of the evaluation.
//
// Response times are the simnet cost clock's modeled times on the paper's
// testbed profile (see DESIGN.md §2): real executions of real plans,
// clocked analytically, so runs are deterministic and host-independent.
package harness

import (
	"fmt"
	"sync"
	"time"

	"gignite"
	"gignite/internal/faults"
	"gignite/internal/ssb"
	"gignite/internal/tpch"
)

// System identifies one of the paper's system variants.
type System string

// The three evaluated systems.
const (
	IC     System = "IC"
	ICPlus System = "IC+"
	ICPM   System = "IC+M"
)

// Systems lists the variants in presentation order.
func Systems() []System { return []System{IC, ICPlus, ICPM} }

// ConfigFor builds the engine configuration of a system variant with the
// execution work limit scaled to the scale factor (the analogue of the
// paper's fixed four-hour limit across its SF range).
func ConfigFor(sys System, sites int, sf float64) gignite.Config {
	var cfg gignite.Config
	switch sys {
	case IC:
		cfg = gignite.IC(sites)
	case ICPlus:
		cfg = gignite.ICPlus(sites)
	case ICPM:
		cfg = gignite.ICPlusM(sites)
	default:
		panic(fmt.Sprintf("harness: unknown system %q", sys))
	}
	cfg.ExecWorkLimit = WorkLimitFor(sf)
	// The row limit scales with the work limit (one row of join emission
	// charges ~100 work units), matching the calibration of the baseline
	// failure matrix.
	cfg.ExecRowLimit = int64(WorkLimitFor(sf) / 100)
	return cfg
}

// WorkLimitFor scales the execution work limit linearly with the scale
// factor; at SF 0.002 it matches the limit under which the baseline
// failure matrix was calibrated.
func WorkLimitFor(sf float64) float64 { return 5e10 * sf }

// Workload selects the benchmark.
type Workload uint8

// The two benchmarks of §6.
const (
	TPCH Workload = iota
	SSB
)

func (w Workload) String() string {
	if w == SSB {
		return "SSB"
	}
	return "TPC-H"
}

// Env caches loaded engines so experiments over many (system, sites, SF)
// combinations pay data generation and loading once each. An Env is safe
// for concurrent use (the multi-client AQL drivers share one).
type Env struct {
	// Parallelism is passed through to Config.ExecParallelism for every
	// engine the Env opens (0 = GOMAXPROCS, 1 = sequential).
	Parallelism int
	// Backups is the per-partition backup replica count for every engine
	// the Env opens (Config.Backups).
	Backups int
	// Faults is an optional fault-injection plan applied to every query
	// (Config.Faults); nil injects nothing.
	Faults *faults.Plan
	// Timeout is an optional per-query wall-clock deadline
	// (Config.QueryTimeout); 0 means none.
	Timeout time.Duration
	// Filters enables runtime join-filter pushdown (Config.RuntimeFilters)
	// for every engine the Env opens. It is part of the engine cache key,
	// so one Env can hold filters-on and filters-off engines side by side.
	Filters bool
	// PlanCache is the plan-cache capacity (Config.PlanCacheSize) for every
	// engine the Env opens; 0 disables caching. Part of the engine cache
	// key, so cache-on and cache-off engines coexist in one Env.
	PlanCache int
	// Adaptive enables mid-query re-optimization (Config.AdaptiveExec)
	// and Misestimate perturbs the planner's join estimates
	// (Config.StatsMisestimate) for every engine the Env opens. Both are
	// part of the engine cache key.
	Adaptive    bool
	Misestimate float64

	mu      sync.Mutex
	engines map[string]*gignite.Engine
}

// NewEnv creates an empty environment.
func NewEnv() *Env { return &Env{engines: make(map[string]*gignite.Engine)} }

// Engine returns (loading on first use) the engine for a combination.
func (env *Env) Engine(w Workload, sys System, sites int, sf float64) (*gignite.Engine, error) {
	key := fmt.Sprintf("%s/%s/%d/%g/filters=%t/plancache=%d/adaptive=%t/mis=%g",
		w, sys, sites, sf, env.Filters, env.PlanCache, env.Adaptive, env.Misestimate)
	env.mu.Lock()
	defer env.mu.Unlock()
	if e, ok := env.engines[key]; ok {
		return e, nil
	}
	cfg := ConfigFor(sys, sites, sf)
	cfg.ExecParallelism = env.Parallelism
	cfg.Backups = env.Backups
	cfg.Faults = env.Faults
	cfg.QueryTimeout = env.Timeout
	cfg.RuntimeFilters = env.Filters
	cfg.PlanCacheSize = env.PlanCache
	cfg.AdaptiveExec = env.Adaptive
	cfg.StatsMisestimate = env.Misestimate
	e := gignite.New(cfg)
	var err error
	if w == SSB {
		err = ssb.Setup(e, sf)
	} else {
		err = tpch.Setup(e, sf)
	}
	if err != nil {
		return nil, err
	}
	env.engines[key] = e
	return e, nil
}

// measuredRuns is the paper's per-query protocol: one warm-up execution
// followed by three measured executions (§6.2).
const measuredRuns = 3

// ResponseTime runs the §6.2 protocol for one query and returns the mean
// modeled response time of the measured executions.
func ResponseTime(e *gignite.Engine, query string) (time.Duration, error) {
	if _, err := e.Query(query); err != nil { // warm-up
		return 0, err
	}
	var total time.Duration
	for i := 0; i < measuredRuns; i++ {
		res, err := e.Query(query)
		if err != nil {
			return 0, err
		}
		total += res.Modeled
	}
	return total / measuredRuns, nil
}

// QueryTimes measures every query of a workload on one engine. Failures
// (planning errors, work-limit timeouts) are reported as negative
// durations with the error retained.
type QueryTime struct {
	Label string
	Time  time.Duration
	Err   error
}

// TPCHTimes measures the TPC-H queries (skipping Q15, which requires
// views, and Q20 when skipPaperDisabled is set — the paper disables both).
func TPCHTimes(e *gignite.Engine, skipPaperDisabled bool) []QueryTime {
	var out []QueryTime
	for _, q := range tpch.Queries() {
		if q.RequiresViews {
			continue
		}
		if skipPaperDisabled && q.ID == 20 {
			continue
		}
		d, err := ResponseTime(e, q.SQL)
		out = append(out, QueryTime{Label: fmt.Sprintf("Q%d", q.ID), Time: d, Err: err})
	}
	return out
}

// SSBTimes measures the SSB queries, optionally restricted to the
// paper-included flights (1 and 3).
func SSBTimes(e *gignite.Engine, paperFlightsOnly bool) []QueryTime {
	excluded := ssb.ExcludedFlights()
	var out []QueryTime
	for _, q := range ssb.Queries() {
		if paperFlightsOnly && excluded[q.Flight] {
			continue
		}
		d, err := ResponseTime(e, q.SQL)
		out = append(out, QueryTime{Label: q.ID, Time: d, Err: err})
	}
	return out
}
