package harness

import (
	"fmt"

	"gignite"
	"gignite/internal/obs"
	"gignite/internal/tpch"
)

// MetricsSchema versions the benchrunner -metrics JSON file. The file is
// one MetricsFile object:
//
//	{
//	  "schema":   "gignite.metrics/v1",
//	  "system":   "IC+M",            // system variant
//	  "workload": "TPC-H",
//	  "sf":       0.1,               // scale factor
//	  "sites":    4,                 // simulated processing sites
//	  "queries":  [ ... ],           // one QueryMetrics per query run
//	  "engine":   { ... }            // cumulative obs.Snapshot: counters,
//	}                                // gauges, histograms
//
// Each QueryMetrics element carries the query's modeled and wall times,
// totals (work, bytes, instances, retries, spans) and the per-operator
// estimate-vs-actual report ("operators": est_rows from the planner,
// act_rows summed over successful instances, qerror the symmetric
// (est+1)/(act+1) ratio). All deterministic fields are identical across
// hosts and worker counts; wall_seconds is host measurement.
const MetricsSchema = "gignite.metrics/v1"

// OperatorMetrics is one row of the estimate-vs-actual report.
type OperatorMetrics struct {
	Frag    int     `json:"frag"`
	Op      string  `json:"op"`
	EstRows float64 `json:"est_rows"`
	ActRows int64   `json:"act_rows"`
	QError  float64 `json:"qerror"`
	Work    float64 `json:"work"`
}

// QueryMetrics is the observability record of one benchmark query run.
type QueryMetrics struct {
	Label       string  `json:"label"`
	PlanDigest  string  `json:"plan_digest"`
	ModeledSecs float64 `json:"modeled_seconds"`
	WallSecs    float64 `json:"wall_seconds"`
	Rows        int     `json:"rows"`
	Work        float64 `json:"work"`
	Bytes       float64 `json:"bytes_shipped"`
	Instances   int     `json:"instances"`
	Retries     int     `json:"retries"`
	Spans       int     `json:"spans"`
	// Runtime join-filter telemetry (zero when Config.RuntimeFilters is
	// off or the plan carries no filter edges).
	FiltersBuilt int   `json:"filters_built,omitempty"`
	FilterBytes  int64 `json:"filter_bytes,omitempty"`
	RowsPruned   int64 `json:"rows_pruned,omitempty"`
	// PlanningSkipped is true when the run reused a cached plan (plan
	// cache or prepared statement) and so did no optimization work;
	// PlanNanos is the plan-acquisition wall time either way.
	PlanningSkipped bool  `json:"planning_skipped,omitempty"`
	PlanNanos       int64 `json:"plan_nanos,omitempty"`
	// Replans / Switches are the adaptive-execution counters (zero when
	// Config.AdaptiveExec is off — DESIGN.md §17).
	Replans   int               `json:"replans,omitempty"`
	Switches  int               `json:"switches,omitempty"`
	Operators []OperatorMetrics `json:"operators"`
}

// MetricsFile is the top-level -metrics JSON document (see MetricsSchema).
type MetricsFile struct {
	Schema   string         `json:"schema"`
	System   string         `json:"system"`
	Workload string         `json:"workload"`
	SF       float64        `json:"sf"`
	Sites    int            `json:"sites"`
	Queries  []QueryMetrics `json:"queries"`
	Engine   obs.Snapshot   `json:"engine"`
}

// queryMetrics flattens one Result into the metrics-file schema. It is
// a thin projection of the engine's unified QueryReport, so the harness
// and any external consumer of Result.Report see the same numbers.
func queryMetrics(label string, res *gignite.Result) QueryMetrics {
	rep := res.Report()
	qm := QueryMetrics{
		Label:           label,
		PlanDigest:      rep.PlanDigest,
		ModeledSecs:     rep.Stats.Modeled.Seconds(),
		WallSecs:        rep.Wall.Seconds(),
		Rows:            rep.RowCount,
		Work:            rep.Stats.Work,
		Bytes:           rep.Stats.BytesShipped,
		Instances:       rep.Stats.Instances,
		Retries:         rep.Stats.Retries,
		Spans:           rep.Stats.Spans,
		FiltersBuilt:    rep.Stats.FiltersBuilt,
		FilterBytes:     rep.Stats.FilterBytes,
		RowsPruned:      rep.Stats.RowsPruned,
		PlanningSkipped: rep.Stats.PlanningSkipped,
		PlanNanos:       rep.Stats.PlanNanos,
		Replans:         rep.Stats.AdaptiveReplans,
		Switches:        rep.Stats.AdaptiveSwitches,
	}
	for _, op := range rep.Operators {
		qm.Operators = append(qm.Operators, OperatorMetrics{
			Frag: op.Frag, Op: op.Op,
			EstRows: op.EstRows, ActRows: op.ActRows,
			QError: op.QError, Work: op.Work,
		})
	}
	return qm
}

// CollectMetrics runs the selected TPC-H queries once each on one engine
// and returns the metrics document plus the raw per-query observation
// records (for trace export). ids selects TPC-H query numbers; nil runs
// the full paper set.
func CollectMetrics(env *Env, sys System, sites int, sf float64, ids []int) (*MetricsFile, []*obs.QueryObs, error) {
	e, err := env.Engine(TPCH, sys, sites, sf)
	if err != nil {
		return nil, nil, err
	}
	if len(ids) == 0 {
		for _, q := range tpch.Queries() {
			if !q.RequiresViews && q.ID != 20 {
				ids = append(ids, q.ID)
			}
		}
	}
	mf := &MetricsFile{
		Schema: MetricsSchema, System: string(sys),
		Workload: TPCH.String(), SF: sf, Sites: sites,
	}
	var traces []*obs.QueryObs
	for _, id := range ids {
		q := tpch.QueryByID(id)
		if q == nil {
			return nil, nil, fmt.Errorf("harness: unknown TPC-H query %d", id)
		}
		label := fmt.Sprintf("Q%d", q.ID)
		res, err := e.Query(q.SQL)
		if err != nil {
			return nil, nil, fmt.Errorf("harness: %s: %w", label, err)
		}
		if res.Obs != nil {
			res.Obs.Label = label
			traces = append(traces, res.Obs)
		}
		mf.Queries = append(mf.Queries, queryMetrics(label, res))
	}
	mf.Engine = e.Metrics()
	return mf, traces, nil
}
