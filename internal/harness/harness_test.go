package harness

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// Harness tests run at a tiny scale factor and a single site pair to stay
// fast; the full protocol is exercised by cmd/benchrunner and the root
// benchmarks.
func tinyOpts() Options {
	return Options{SFs: []float64{0.002}, Sites: []int{4}, Env: NewEnv()}
}

func TestConfigForVariants(t *testing.T) {
	ic := ConfigFor(IC, 4, 0.01)
	if ic.HashJoin || ic.TwoPhaseOptimization || ic.SwamiSchieferEstimation {
		t.Error("IC config has improvements enabled")
	}
	icp := ConfigFor(ICPlus, 4, 0.01)
	if !icp.HashJoin || !icp.TwoPhaseOptimization || icp.VariantFragments > 1 {
		t.Error("IC+ config wrong")
	}
	icpm := ConfigFor(ICPM, 4, 0.01)
	if icpm.VariantFragments != 2 {
		t.Error("IC+M should run 2 variant fragments")
	}
	if ic.ExecWorkLimit != WorkLimitFor(0.01) {
		t.Error("work limit not scaled")
	}
}

func TestEnvCachesEngines(t *testing.T) {
	env := NewEnv()
	a, err := env.Engine(TPCH, ICPlus, 4, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.Engine(TPCH, ICPlus, 4, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("engine not cached")
	}
	c, err := env.Engine(TPCH, IC, 4, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different systems share an engine")
	}
}

func TestResponseTimeProtocol(t *testing.T) {
	env := NewEnv()
	e, err := env.Engine(TPCH, ICPlus, 4, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ResponseTime(e, "SELECT COUNT(*) FROM region")
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Errorf("response time = %v", d)
	}
}

func TestReportRendering(t *testing.T) {
	rep := NewReport("Demo", "a", "b")
	rep.Add("Q1", "1.00x", "2.00x")
	rep.Add("Q2", "3.00x", "4.00x")
	rep.Note("hello %d", 42)
	out := rep.Render()
	for _, want := range []string{"Demo", "Q1", "2.00x", "note: hello 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if v, ok := rep.Value("Q2", "b"); !ok || v != "4.00x" {
		t.Errorf("Value = %q, %v", v, ok)
	}
	if labels := rep.Labels(); len(labels) != 2 || labels[0] != "Q1" {
		t.Errorf("labels = %v", labels)
	}
}

func TestSimulateAQLShape(t *testing.T) {
	base := []time.Duration{time.Second, 2 * time.Second}
	one := simulateAQL(base, 1, 1.0)
	if one < 1.0 || one > 2.0 {
		t.Errorf("AQL with no contention = %v, want within base range", one)
	}
	// Contention scales latency linearly.
	contended := simulateAQL(base, 1, 2.0)
	if contended < 2*one*0.9 {
		t.Errorf("contended AQL = %v vs %v", contended, one)
	}
	if got := simulateAQL(nil, 2, 1); got != 0 {
		t.Errorf("empty AQL = %v", got)
	}
}

func TestAQLContentionShape(t *testing.T) {
	// The Table 3 mechanism: at 2 clients IC+M's doubled threads still fit
	// within the cores (no extra penalty); at 4 and 8 clients they exceed
	// the core count and IC+M degrades faster than IC/IC+.
	if aqlContention(ICPM, 2) != aqlContention(IC, 2) {
		t.Errorf("2 clients: IC+M %v vs IC %v — threads fit, no penalty expected",
			aqlContention(ICPM, 2), aqlContention(IC, 2))
	}
	for _, clients := range []int{4, 8} {
		ic := aqlContention(IC, clients)
		icpm := aqlContention(ICPM, clients)
		if icpm <= ic {
			t.Errorf("%d clients: IC+M contention %v <= IC %v", clients, icpm, ic)
		}
	}
	if aqlContention(IC, 8) <= aqlContention(IC, 2) {
		t.Error("contention must grow with clients")
	}
	// 8 clients x 3.5 threads exceeds 24 cores: even IC pays a little.
	if aqlContention(IC, 8) <= 1+0.15*7 {
		t.Error("over-core term missing for IC at 8 clients")
	}
}

func TestTPCHTimesSkipsDisabled(t *testing.T) {
	env := NewEnv()
	e, err := env.Engine(TPCH, ICPlus, 4, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	times := TPCHTimes(e, true)
	for _, qt := range times {
		if qt.Label == "Q15" || qt.Label == "Q20" {
			t.Errorf("%s not skipped", qt.Label)
		}
		if qt.Err != nil {
			t.Errorf("%s: %v", qt.Label, qt.Err)
		}
	}
	if len(times) != 20 {
		t.Errorf("measured %d queries, want 20", len(times))
	}
}

// TestFig11Shape runs the SSB figure at tiny scale and checks the paper's
// qualitative result: every included query improves, and flight 3's mean
// improvement exceeds flight 1's.
func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("loads SSB twice")
	}
	rep, err := Fig11(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	var f1, f3 []float64
	for _, label := range rep.Labels() {
		cell, _ := rep.Value(label, "speedup")
		var v float64
		if _, err := fmt.Sscanf(cell, "%fx", &v); err != nil {
			t.Fatalf("%s: bad cell %q", label, cell)
		}
		if v < 0.9 {
			t.Errorf("%s regressed: %v", label, cell)
		}
		if strings.HasPrefix(label, "Q1.") {
			f1 = append(f1, v)
		} else {
			f3 = append(f3, v)
		}
	}
	if mean(f3) <= mean(f1) {
		t.Errorf("flight 3 mean (%v) should exceed flight 1 mean (%v)", mean(f3), mean(f1))
	}
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// TestFig7Shape pins the headline reproduction claims at a tiny scale:
// IC+ is at least as fast as IC (within noise) on every comparable query,
// strictly faster on several, and exactly equal-plan (≈1.0x) on Q1/Q6/Q12.
func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("loads four TPC-H engines")
	}
	// SF 0.005 is the smallest scale where data volume dominates the fixed
	// network/thread constants; below it the distributed plans' message
	// overheads drown their gains (DESIGN.md §8.5).
	rep, err := Fig7(Options{SFs: []float64{0.005}, Sites: []int{4}, Env: NewEnv()})
	if err != nil {
		t.Fatal(err)
	}
	var big int
	for _, label := range rep.Labels() {
		cell, _ := rep.Value(label, "4 sites")
		var v float64
		if _, err := fmt.Sscanf(cell, "%fx", &v); err != nil {
			t.Fatalf("%s: bad cell %q", label, cell)
		}
		if v < 0.90 {
			t.Errorf("%s regressed under IC+: %s", label, cell)
		}
		if v > 1.3 {
			big++
		}
		switch label {
		case "Q1", "Q6", "Q12":
			if v < 0.95 || v > 1.1 {
				t.Errorf("%s should produce the same plan as IC (≈1.0x), got %s", label, cell)
			}
		}
	}
	if big < 4 {
		t.Errorf("only %d queries improved >1.3x; the paper's large-gain set is missing", big)
	}
}
