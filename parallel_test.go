package gignite_test

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"gignite"
	"gignite/internal/harness"
	"gignite/internal/tpch"
	"gignite/internal/types"
)

// parallelTestQueries is a fast, multi-fragment TPC-H subset: scans,
// hash joins, two-phase aggregations and sorts across 4 sites.
var parallelTestQueries = []int{1, 3, 6, 12, 14}

const parallelTestSF = 0.01

func openParallelTestEngine(t testing.TB, sys harness.System, parallelism int) *gignite.Engine {
	t.Helper()
	cfg := harness.ConfigFor(sys, 4, parallelTestSF)
	cfg.ExecParallelism = parallelism
	e := gignite.New(cfg)
	if err := tpch.Setup(e, parallelTestSF); err != nil {
		t.Fatal(err)
	}
	return e
}

func rowStrings(res *gignite.Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r.String()
	}
	return out
}

// roundedRowStrings renders rows with floats rounded to 9 significant
// digits. Variant fragments (§5.3) aggregate partial sums in a different
// order than single-threaded fragments, so float columns may differ in
// the low-order bits between variants=1 and variants=2 — legitimately,
// as in the paper's system.
func roundedRowStrings(res *gignite.Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			if v.K == types.KindFloat {
				parts[j] = fmt.Sprintf("%.9g", v.Float())
			} else {
				parts[j] = v.String()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

// TestConcurrentEngineExec drives the paper's multi-client setting for
// real: N goroutines issue mixed TPC-H SELECTs against one engine (run
// under -race in CI). Every result must be byte-identical to the
// sequential (ExecParallelism=1) run of the same engine configuration,
// and the variant-fragment (IC+M, variants=2) output must be
// order-insensitive-equal to the single-threaded IC+ output.
func TestConcurrentEngineExec(t *testing.T) {
	seq := openParallelTestEngine(t, harness.ICPM, 1)
	par := openParallelTestEngine(t, harness.ICPM, 0)
	plain := openParallelTestEngine(t, harness.ICPlus, 1)

	want := make(map[int][]string)
	for _, id := range parallelTestQueries {
		q := tpch.QueryByID(id)
		res, err := seq.Query(q.SQL)
		if err != nil {
			t.Fatalf("sequential Q%d: %v", id, err)
		}
		want[id] = rowStrings(res)

		// Variant fragments (IC+M, variants=2) vs no variants (IC+):
		// order-insensitive-equal, with float columns rounded because
		// partial-aggregation order differs between the two.
		pres, err := plain.Query(q.SQL)
		if err != nil {
			t.Fatalf("IC+ Q%d: %v", id, err)
		}
		vs, ps := roundedRowStrings(res), roundedRowStrings(pres)
		sort.Strings(vs)
		sort.Strings(ps)
		if fmt.Sprint(vs) != fmt.Sprint(ps) {
			t.Fatalf("Q%d: variants=2 output differs from variants=1 (order-insensitive)", id)
		}
	}

	const clients = 8
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, clients*rounds*len(parallelTestQueries))
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for k := range parallelTestQueries {
					// Rotate the order per client so different queries
					// overlap in flight.
					id := parallelTestQueries[(k+c)%len(parallelTestQueries)]
					res, err := par.Query(tpch.QueryByID(id).SQL)
					if err != nil {
						errs <- fmt.Errorf("client %d Q%d: %v", c, id, err)
						continue
					}
					got := rowStrings(res)
					if len(got) != len(want[id]) {
						errs <- fmt.Errorf("client %d Q%d: %d rows, want %d",
							c, id, len(got), len(want[id]))
						continue
					}
					for i := range got {
						if got[i] != want[id][i] {
							errs <- fmt.Errorf("client %d Q%d row %d: %s, want %s",
								c, id, i, got[i], want[id][i])
							break
						}
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestExecStatsReportWorkers: the engine surfaces the pool size it ran
// with, and ExecParallelism=1 reports one worker.
func TestExecStatsReportWorkers(t *testing.T) {
	seq := openParallelTestEngine(t, harness.ICPlus, 1)
	res, err := seq.Query(tpch.QueryByID(3).SQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Workers != 1 {
		t.Errorf("sequential workers = %d, want 1", res.Stats.Workers)
	}
	par := openParallelTestEngine(t, harness.ICPlus, 3)
	res, err = par.Query(tpch.QueryByID(3).SQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Workers != 3 {
		t.Errorf("parallel workers = %d, want 3", res.Stats.Workers)
	}
	if res.Stats.Instances <= res.Stats.Fragments {
		t.Errorf("instances = %d, fragments = %d: expected per-site fan-out",
			res.Stats.Instances, res.Stats.Fragments)
	}
}
