// Quickstart: create tables on a 4-site gignite cluster, load rows, and
// run distributed SQL — the sample schema and join query of the paper's
// Figure 1.
package main

import (
	"fmt"
	"log"
	"strings"

	"gignite"
)

func main() {
	// IC+M is the fully improved system: planner fixes, hash joins,
	// fully-distributed join mappings and dual-threaded variant fragments.
	e := gignite.New(gignite.ICPlusM(4))

	must := func(q string) *gignite.Result {
		res, err := e.Exec(q)
		if err != nil {
			log.Fatalf("%s: %v", q, err)
		}
		return res
	}

	// The paper's Figure 1 schema. Tables are hash-partitioned on their
	// primary keys across the 4 sites.
	must(`CREATE TABLE employee (id BIGINT PRIMARY KEY, name VARCHAR(30), dept VARCHAR(20))`)
	must(`CREATE TABLE sales (sale_id BIGINT PRIMARY KEY, emp_id BIGINT, amount DOUBLE)`)

	must(`INSERT INTO employee (id, name, dept) VALUES
		(10, 'ada', 'engineering'), (11, 'grace', 'engineering'),
		(12, 'edsger', 'research'), (13, 'barbara', 'research')`)
	must(`INSERT INTO sales (sale_id, emp_id, amount) VALUES
		(1, 10, 120.5), (2, 10, 80.0), (3, 11, 200.0),
		(4, 12, 40.25), (5, 13, 310.0), (6, 13, 55.5)`)

	// Collect statistics so the cost-based planner has cardinalities.
	if err := e.Analyze(); err != nil {
		log.Fatal(err)
	}

	// The paper's Query A: a distributed equi-join.
	queryA := `SELECT * FROM employee INNER JOIN sales
		ON employee.id = sales.emp_id WHERE employee.id = 10`
	res := must(queryA)
	fmt.Println("Query A results:")
	fmt.Println(strings.Join(res.Columns, " | "))
	for _, r := range res.Rows {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.String()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("modeled response time on the 4-site cluster: %v\n\n", res.Modeled)

	// An aggregation with ORDER BY, executed as a distributed two-phase
	// (map/reduce) aggregation.
	res = must(`SELECT e.dept, COUNT(*) AS n, SUM(s.amount) AS revenue
		FROM employee e, sales s WHERE e.id = s.emp_id
		GROUP BY e.dept ORDER BY revenue DESC`)
	fmt.Println("revenue by department:")
	for _, r := range res.Rows {
		fmt.Printf("  %-12s n=%s revenue=%s\n", r[0], r[1], r[2])
	}

	// EXPLAIN shows the fragmented physical plan: distribution traits,
	// join mapping, senders/receivers.
	plan, err := e.Explain(queryA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEXPLAIN Query A:")
	fmt.Println(plan)
}
