// TPC-H walkthrough: load the benchmark at a laptop scale factor, then
// compare the three system variants of the paper (IC, IC+, IC+M) on a few
// representative queries — the per-query response time protocol of §6.2.
package main

import (
	"errors"
	"fmt"
	"log"

	"gignite"
	"gignite/internal/harness"
	"gignite/internal/tpch"
)

func main() {
	const (
		sf    = 0.005
		sites = 4
	)
	fmt.Printf("loading TPC-H SF %g on %d sites for IC, IC+ and IC+M...\n\n", sf, sites)

	engines := map[harness.System]*gignite.Engine{}
	for _, sys := range harness.Systems() {
		e := gignite.New(harness.ConfigFor(sys, sites, sf))
		if err := tpch.Setup(e, sf); err != nil {
			log.Fatal(err)
		}
		engines[sys] = e
	}

	// Q3 (shipping priority), Q14 (promotion effect — the sort-order /
	// index-scan improvement), Q19 (the §5.2 join-condition
	// simplification showcase) and Q21 (baseline NLJ timeout).
	for _, id := range []int{3, 14, 19, 21} {
		q := tpch.QueryByID(id)
		fmt.Printf("Q%d (%s):\n", q.ID, q.Name)
		for _, sys := range harness.Systems() {
			d, err := harness.ResponseTime(engines[sys], q.SQL)
			switch {
			case errors.Is(err, gignite.ErrQueryTimeout):
				fmt.Printf("  %-5s exceeded the runtime limit (the paper's >4h timeout)\n", sys)
			case err != nil:
				fmt.Printf("  %-5s failed: %v\n", sys, err)
			default:
				fmt.Printf("  %-5s %v\n", sys, d)
			}
		}
		fmt.Println()
	}

	// Show what changed for Q19: the §5.2 rewrite exposes the equi key
	// inside the OR-of-ANDs predicate, enabling a distributed hash join.
	q19 := tpch.QueryByID(19)
	plan, err := engines[harness.ICPlus].Explain(q19.SQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q19 plan under IC+ (note the hash join and the extracted conditions):")
	fmt.Println(plan)
}
