// Composability demo: the point of the paper's composable-systems study
// is that the optimizer is assembled from swappable parts. This example
// runs the SAME query under different compositions — toggling the join
// estimator, the cost-model fixes, the hash-join operator and the §5.1.1
// distribution mappings one at a time — and shows how the physical plan
// and modeled cost change with each part.
package main

import (
	"fmt"
	"log"
	"strings"

	"gignite"
	"gignite/internal/tpch"
)

func main() {
	const (
		sf    = 0.005
		sites = 4
	)
	query := tpch.QueryByID(14).SQL // lineitem ⋈ part with a date filter

	type composition struct {
		name   string
		mutate func(*gignite.Config)
	}
	compositions := []composition{
		{"baseline (IC)", func(c *gignite.Config) {}},
		{"+ Swami-Schiefer join estimation (Eq. 3)", func(c *gignite.Config) {
			c.SwamiSchieferEstimation = true
		}},
		{"+ standardized cost units + distribution factor", func(c *gignite.Config) {
			c.SwamiSchieferEstimation = true
			c.StandardCostUnits = true
			c.DistributionFactor = true
			c.FixExchangePenalty = true
		}},
		{"+ hash join (§5.1.2)", func(c *gignite.Config) {
			c.SwamiSchieferEstimation = true
			c.StandardCostUnits = true
			c.DistributionFactor = true
			c.FixExchangePenalty = true
			c.HashJoin = true
		}},
		{"+ fully-distributed join mappings (§5.1.1) = IC+", func(c *gignite.Config) {
			*c = gignite.ICPlus(sites)
		}},
		{"+ variant fragments (§5.3) = IC+M", func(c *gignite.Config) {
			*c = gignite.ICPlusM(sites)
		}},
	}

	for _, comp := range compositions {
		cfg := gignite.IC(sites)
		comp.mutate(&cfg)
		e := gignite.New(cfg)
		if err := tpch.Setup(e, sf); err != nil {
			log.Fatal(err)
		}
		res, err := e.Query(query)
		if err != nil {
			log.Fatalf("%s: %v", comp.name, err)
		}
		fmt.Printf("%-55s modeled=%10v  shipped=%6.0fKB  instances=%d\n",
			comp.name, res.Modeled, res.Stats.BytesShipped/1024, res.Stats.Instances)
		// One plan line: which join algorithm/mapping won.
		plan, _ := e.Explain(query)
		for _, line := range strings.Split(plan, "\n") {
			if strings.Contains(line, "Join[") {
				fmt.Printf("%55s %s\n", "", strings.TrimSpace(line))
				break
			}
		}
	}
}
