// SSB analytics walkthrough: a star-schema data warehouse on gignite.
// Loads the Star Schema Benchmark, runs the drill-down of query flight 3
// (customer × supplier geography over time), and shows how the fact table
// stays in place while dimensions ship — the §5.1.1 fully-distributed
// join mapping the paper credits for the SSB gains.
package main

import (
	"fmt"
	"log"
	"strings"

	"gignite"
	"gignite/internal/harness"
	"gignite/internal/ssb"
)

func main() {
	const (
		sf    = 0.005
		sites = 4
	)
	e := gignite.New(harness.ConfigFor(harness.ICPM, sites, sf))
	fmt.Printf("loading SSB at SF %g on %d sites...\n\n", sf, sites)
	if err := ssb.Setup(e, sf); err != nil {
		log.Fatal(err)
	}

	// The flight-3 drill-down: from nation level to a single year-month.
	for _, q := range ssb.Queries() {
		if q.Flight != 3 {
			continue
		}
		res, err := e.Query(q.SQL)
		if err != nil {
			log.Fatalf("%s: %v", q.ID, err)
		}
		fmt.Printf("%s: %d groups, modeled %v, %0.f KB shipped\n",
			q.ID, len(res.Rows), res.Modeled, res.Stats.BytesShipped/1024)
		for i, r := range res.Rows {
			if i == 3 {
				fmt.Println("   ...")
				break
			}
			parts := make([]string, len(r))
			for j, v := range r {
				parts[j] = v.String()
			}
			fmt.Println("   " + strings.Join(parts, " | "))
		}
	}

	// A custom dashboard query over the same warehouse: revenue by
	// customer region and year.
	res, err := e.Query(`
		SELECT c_region, d_year, SUM(lo_revenue) AS revenue
		FROM lineorder, customer, ddate
		WHERE lo_custkey = c_custkey AND lo_orderdate = d_datekey
		GROUP BY c_region, d_year
		ORDER BY c_region, d_year`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrevenue by region and year:")
	for _, r := range res.Rows {
		fmt.Printf("   %-12s %s  %s\n", r[0], r[1], r[2])
	}
}
