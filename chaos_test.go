package gignite_test

// Chaos suite: TPC-H under deterministic fault injection. Every scenario
// asserts the recovered run returns byte-identical rows to the fault-free
// run (the fault-tolerance layer must be invisible in results), that
// recovery cost is surfaced in the execution stats, and that no
// goroutines leak. Run under -race in CI (the `chaos` job).

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"gignite"
	"gignite/internal/harness"
	"gignite/internal/tpch"
)

const chaosSF = 0.005

// chaosQueries are the acceptance queries: a two-phase aggregation (Q1)
// and a join + sort pipeline (Q3), both multi-fragment at 4 sites.
var chaosQueries = []int{1, 3}

func openChaosEngine(t *testing.T, backups int, spec string) *gignite.Engine {
	t.Helper()
	plan, err := gignite.ParseFaults(spec)
	if err != nil {
		t.Fatalf("fault spec %q: %v", spec, err)
	}
	cfg := harness.ConfigFor(harness.ICPlus, 4, chaosSF)
	cfg.Backups = backups
	cfg.Faults = plan
	e := gignite.New(cfg)
	if err := tpch.Setup(e, chaosSF); err != nil {
		t.Fatal(err)
	}
	return e
}

// checkGoroutineLeaks fails the test if goroutines outlive it (workers,
// backoff timers). Registered before the work so the cleanup runs after.
func checkGoroutineLeaks(t *testing.T) {
	t.Helper()
	start := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > start {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d at start, %d after\n%s",
					start, runtime.NumGoroutine(), buf[:n])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// TestChaosFaultPlans: seeded fault plans against TPC-H Q1 and Q3. Each
// scenario's rows must be byte-identical to the fault-free run at every
// worker count, and recovery scenarios must surface retries in the stats.
func TestChaosFaultPlans(t *testing.T) {
	checkGoroutineLeaks(t)
	baseline := openChaosEngine(t, 1, "")
	want := make(map[int][]string)
	wantWork := make(map[int]float64)
	for _, id := range chaosQueries {
		res, err := baseline.Query(tpch.QueryByID(id).SQL)
		if err != nil {
			t.Fatalf("fault-free Q%d: %v", id, err)
		}
		want[id] = rowStrings(res)
		wantWork[id] = res.Stats.Work
	}

	scenarios := []struct {
		name    string
		spec    string
		backups int
		// wantRetries: the plan must force at least one recovery event
		// across the two queries.
		wantRetries bool
		// wantExtraWork: a mid-query crash loses completed work, so the
		// trace must charge more total work than the fault-free run.
		wantExtraWork bool
	}{
		// Site 2 dies while its ordinal-2 instance is in flight: the
		// attempt's work is lost and the instance fails over to the backup.
		{"site crash mid-query", "seed=1;crash=2@2", 1, true, true},
		// Site 1 is already dead when the query starts: pure failover.
		{"site dead at start", "seed=1;crash=1@0", 1, true, false},
		// Flaky transport: sends fail at 10% per attempt; retries redraw a
		// fresh outcome, so every instance eventually gets through.
		{"flaky transport", "seed=2;sendfail=0.1", 1, true, false},
		// Compound: a crash plus a 2x-slow surviving site.
		{"crash with slow survivor", "seed=5;crash=3@1;slow=1x2.0", 1, true, true},
		// Everything at once, including a shrunken memory pool on site 0:
		// instances whose estimated operator state overflows 64KiB there
		// abort with ErrSiteMem and fail over to their backup replica.
		{"full fault matrix with site memory pressure",
			"seed=6;slow=1x4;crash=2@3;sendfail=0.05;mem=0@65536", 1, true, true},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			e := openChaosEngine(t, sc.backups, sc.spec)
			retries := 0
			var work float64
			for _, workers := range []int{1, 0} {
				e.SetExecParallelism(workers)
				for _, id := range chaosQueries {
					res, err := e.Query(tpch.QueryByID(id).SQL)
					if err != nil {
						t.Fatalf("workers=%d Q%d: %v", workers, id, err)
					}
					got := rowStrings(res)
					if len(got) != len(want[id]) {
						t.Fatalf("workers=%d Q%d: %d rows, want %d",
							workers, id, len(got), len(want[id]))
					}
					for i := range got {
						if got[i] != want[id][i] {
							t.Fatalf("workers=%d Q%d row %d differs:\n got %s\nwant %s",
								workers, id, i, got[i], want[id][i])
						}
					}
					retries += res.Stats.Retries
					work += res.Stats.Work - wantWork[id]
				}
			}
			if sc.wantRetries && retries == 0 {
				t.Error("no retries recorded; the fault plan injected nothing")
			}
			if sc.wantExtraWork && work <= 0 {
				t.Errorf("total work delta = %g; a mid-query crash must charge lost work", work)
			}
		})
	}
}

// TestChaosNoBackupsFailsCleanly: with zero redundancy a crashed site
// turns into a clean aggregate error, not a panic, hang, or wrong rows.
func TestChaosNoBackupsFailsCleanly(t *testing.T) {
	checkGoroutineLeaks(t)
	e := openChaosEngine(t, 0, "seed=1;crash=2@0")
	for _, id := range chaosQueries {
		_, err := e.Query(tpch.QueryByID(id).SQL)
		if err == nil {
			t.Fatalf("Q%d: crashed site with no backups must fail", id)
		}
	}
}

// TestChaosErrorTextDeterministic: when several instances fail, the
// joined error reports every distinct failure in deterministic job
// order — identical text at Workers=1 and Workers=8.
func TestChaosErrorTextDeterministic(t *testing.T) {
	checkGoroutineLeaks(t)
	e := openChaosEngine(t, 0, "seed=1;crash=1@0;crash=2@0")
	q := tpch.QueryByID(1).SQL
	e.SetExecParallelism(1)
	_, errSeq := e.Query(q)
	if errSeq == nil {
		t.Fatal("two crashed sites with no backups must fail")
	}
	e.SetExecParallelism(8)
	_, errPar := e.Query(q)
	if errPar == nil {
		t.Fatal("two crashed sites with no backups must fail")
	}
	if errSeq.Error() != errPar.Error() {
		t.Errorf("error text depends on worker count:\nworkers=1: %s\nworkers=8: %s",
			errSeq, errPar)
	}
}

// openCancelEngine: the IC baseline with the work limit disabled, so its
// mis-planned nested-loop joins run indefinitely unless cancelled.
func openCancelEngine(t *testing.T) *gignite.Engine {
	t.Helper()
	cfg := gignite.IC(4)
	cfg.ExecWorkLimit = -1
	e := gignite.New(cfg)
	if err := tpch.Setup(e, chaosSF); err != nil {
		t.Fatal(err)
	}
	return e
}

// longRunningSQL forces a huge nested-loop join (the condition is not an
// equi-join, so every plan falls back to NL) that emits nothing — only
// cancellation can stop it early.
const longRunningSQL = `select count(*) from lineitem l1, lineitem l2
where l1.l_orderkey + l2.l_orderkey < 0`

// TestChaosDeadlineCancelsQuery: a context deadline aborts a long query
// with context.DeadlineExceeded.
func TestChaosDeadlineCancelsQuery(t *testing.T) {
	checkGoroutineLeaks(t)
	e := openCancelEngine(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := e.QueryContext(ctx, longRunningSQL)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}

	// Config.QueryTimeout is the engine-level form of the same deadline.
	cfg := e.Config()
	cfg.QueryTimeout = time.Millisecond
	te := gignite.New(cfg)
	if err := tpch.Setup(te, chaosSF); err != nil {
		t.Fatal(err)
	}
	if _, err := te.Query(longRunningSQL); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("QueryTimeout err = %v, want context.DeadlineExceeded", err)
	}
}

// TestChaosClientCancelMidWave: an explicit client cancel fired while the
// first wave is executing stops the query with context.Canceled.
func TestChaosClientCancelMidWave(t *testing.T) {
	checkGoroutineLeaks(t)
	e := openCancelEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := e.QueryContext(ctx, longRunningSQL)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Without cancellation this join is ~10^9 row evaluations; returning
	// quickly proves the operators observed the cancel mid-execution.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancel took %v to take effect", elapsed)
	}
}
