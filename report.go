package gignite

import "time"

// QueryReport is the unified per-query report of the v1 API: one
// JSON-serializable view over everything the engine observed about a
// SELECT — response times, execution telemetry, the per-operator
// estimate-vs-actual table and the adaptive replan log. It merges what
// used to live in three places (Result.Stats, Result.Obs and the
// benchmark harness's per-query metrics, which are now derived from
// it). Every field except Wall is deterministic: identical across
// hosts, worker counts and fault-free re-runs.
type QueryReport struct {
	// Columns names the result columns and RowCount counts the tuples
	// (the rows themselves stay on the Result).
	Columns  []string `json:"columns,omitempty"`
	RowCount int      `json:"rows"`
	// Modeled is the simnet cost-clock response time; Wall the host wall
	// time of this execution.
	Modeled time.Duration `json:"modeled_ns"`
	Wall    time.Duration `json:"wall_ns"`
	// PlanDigest is a stable hash of the fragmented physical plan.
	PlanDigest string `json:"plan_digest,omitempty"`
	// Stats is the execution telemetry (work, bytes, instances, retries,
	// governance and adaptive counters).
	Stats ExecStats `json:"stats"`
	// Operators is the estimate-vs-actual report, one row per operator
	// in fragment order.
	Operators []OperatorReport `json:"operators,omitempty"`
	// Replans logs the adaptive plan changes applied at wave barriers
	// (empty unless Config.AdaptiveExec rewrote something).
	Replans []ReplanReport `json:"replans,omitempty"`
}

// OperatorReport is one row of the estimate-vs-actual table.
type OperatorReport struct {
	// Frag is the fragment the operator executed in.
	Frag int `json:"frag"`
	// Op is the operator's plan-text description.
	Op string `json:"op"`
	// EstRows is the planner's cardinality estimate, ActRows the rows
	// the operator actually emitted (summed over successful instances)
	// and QError the symmetric (est+1)/(act+1) ratio, always >= 1.
	EstRows float64 `json:"est_rows"`
	ActRows int64   `json:"act_rows"`
	QError  float64 `json:"qerror"`
	// Work is the operator's own modeled work.
	Work float64 `json:"work"`
}

// ReplanReport is one adaptive plan change (DESIGN.md §17).
type ReplanReport struct {
	// Wave is the completed wave whose barrier triggered the change and
	// Frag the pending fragment whose plan changed.
	Wave int `json:"wave"`
	Frag int `json:"frag"`
	// Kind names the trigger: "dist-flip", "build-swap" or
	// "variant-regrade". Op describes the rewritten operator; From/To
	// the strategy before and after.
	Kind string `json:"kind"`
	Op   string `json:"op"`
	From string `json:"from"`
	To   string `json:"to"`
	// EstRows is the planner's estimate and ActRows the runtime actual
	// that fired the trigger.
	EstRows float64 `json:"est_rows"`
	ActRows int64   `json:"act_rows"`
}

// Report assembles the unified QueryReport for a SELECT result. For
// DDL/DML and plain EXPLAIN results the report carries only the column
// and row counts. The report is built fresh on every call; mutating it
// does not affect the Result.
func (r *Result) Report() *QueryReport {
	rep := &QueryReport{
		Columns:  r.Columns,
		RowCount: len(r.Rows),
		Modeled:  r.Modeled,
		Stats:    r.Stats,
	}
	q := r.Obs
	if q == nil {
		return rep
	}
	rep.PlanDigest = q.PlanDigest
	rep.Wall = time.Duration(q.WallNanos)
	for _, fo := range q.Fragments {
		if fo == nil {
			continue
		}
		for _, op := range fo.Ops {
			qerr := (op.EstRows + 1) / (float64(op.RowsOut) + 1)
			if inv := 1 / qerr; inv > qerr {
				qerr = inv
			}
			rep.Operators = append(rep.Operators, OperatorReport{
				Frag: fo.Frag, Op: op.Op,
				EstRows: op.EstRows, ActRows: op.RowsOut,
				QError: qerr, Work: op.Work,
			})
		}
	}
	for _, rp := range q.Replans {
		rep.Replans = append(rep.Replans, ReplanReport{
			Wave: rp.Wave, Frag: rp.Frag, Kind: rp.Kind, Op: rp.Op,
			From: rp.From, To: rp.To, EstRows: rp.EstRows, ActRows: rp.ActRows,
		})
	}
	return rep
}
