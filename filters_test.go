// Tests for runtime join-filter pushdown (DESIGN.md §13): shipped-volume
// regression guards on TPC-H Q3/Q5/Q10, byte-identity of results with
// filters on vs. off at every host parallelism and under fault plans, and
// the filter microbenchmark recorded in BENCH_runtime_filter.json.
package gignite_test

import (
	"fmt"
	"strings"
	"testing"

	"gignite"
	"gignite/internal/harness"
	"gignite/internal/tpch"
)

// filterTestSF is large enough that Q3/Q5/Q10 build non-trivial filters
// but small enough for the test suite's time budget.
const filterTestSF = 0.05

// filterEngine opens an IC+ engine at SF 0.05 on `sites` sites with
// runtime filters toggled, loading TPC-H once per combination.
func filterEngine(t testing.TB, sites int, filters bool, backups int, faultSpec string) *gignite.Engine {
	t.Helper()
	cfg := harness.ConfigFor(harness.ICPlus, sites, filterTestSF)
	cfg.RuntimeFilters = filters
	cfg.Backups = backups
	if faultSpec != "" {
		fp, err := gignite.ParseFaults(faultSpec)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = fp
	}
	e := gignite.New(cfg)
	if err := tpch.Setup(e, filterTestSF); err != nil {
		t.Fatal(err)
	}
	return e
}

// rowsChecksum renders a result set to a comparable string (row order
// included: the engine's results are deterministic and ordered).
func rowsChecksum(rows []gignite.Row) string {
	var sb strings.Builder
	for _, r := range rows {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// exchangeRows sums the rows shipped over a set of exchange IDs, read
// from the query's per-edge observation record.
func exchangeRows(res *gignite.Result, exchanges map[int]bool) int64 {
	var n int64
	for _, e := range res.Obs.Edges {
		if exchanges[e.Exchange] {
			n += e.Rows
		}
	}
	return n
}

// TestRuntimeFilterShippedRows is the rows-shipped regression guard: with
// filters on, the rows crossing Q3/Q5/Q10's guarded exchanges must drop
// by the per-query floor, total shipped bytes must drop, and the modeled
// response time must not regress — while results stay byte-identical.
//
// The floors are what the data admits: Q3 and Q5 prune well past 30%. In
// Q10 the only selective build is lineitem(l_returnflag='R'), and return
// flags correlate with the query's 1993Q4 order window (old lineitems are
// R/A half-and-half), so most probe orders genuinely have a returned
// lineitem; ~14% of the guarded exchange's rows are all that is
// semantically prunable.
func TestRuntimeFilterShippedRows(t *testing.T) {
	off := filterEngine(t, 4, false, 0, "")
	on := filterEngine(t, 4, true, 0, "")
	for _, tc := range []struct {
		qid     int
		minDrop float64
	}{{3, 0.30}, {5, 0.30}, {10, 0.10}} {
		t.Run(fmt.Sprintf("Q%d", tc.qid), func(t *testing.T) {
			sql := tpch.QueryByID(tc.qid).SQL
			base, err := off.Query(sql)
			if err != nil {
				t.Fatal(err)
			}
			res, err := on.Query(sql)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := rowsChecksum(res.Rows), rowsChecksum(base.Rows); got != want {
				t.Fatalf("results diverge with filters on (%d vs %d rows)", len(res.Rows), len(base.Rows))
			}
			st := res.Stats
			if st.FiltersBuilt == 0 {
				t.Fatal("no runtime filters were built")
			}
			guarded := make(map[int]bool)
			var pruned int64
			for _, f := range res.Obs.Filters {
				guarded[f.Exchange] = true
				pruned += f.RowsPruned
			}
			offRows := exchangeRows(base, guarded)
			onRows := exchangeRows(res, guarded)
			if offRows == 0 {
				t.Fatal("guarded exchanges shipped no rows with filters off")
			}
			drop := 1 - float64(onRows)/float64(offRows)
			t.Logf("filters=%d guarded rows %d -> %d (%.1f%% fewer) pruned=%d bytes %.0f -> %.0f modeled %v -> %v",
				st.FiltersBuilt, offRows, onRows, 100*drop, st.RowsPruned,
				base.Stats.BytesShipped, st.BytesShipped, base.Modeled, res.Modeled)
			if drop < tc.minDrop {
				t.Errorf("guarded exchanges shipped %.1f%% fewer rows, want >= %.0f%%", 100*drop, 100*tc.minDrop)
			}
			if st.BytesShipped >= base.Stats.BytesShipped {
				t.Errorf("bytes shipped %.0f did not drop below filters-off %.0f",
					st.BytesShipped, base.Stats.BytesShipped)
			}
			if res.Modeled > base.Modeled {
				t.Errorf("modeled time regressed: %v > %v", res.Modeled, base.Modeled)
			}
			if pruned != st.RowsPruned {
				t.Errorf("FilterObs pruned sum %d != Stats.RowsPruned %d", pruned, st.RowsPruned)
			}
		})
	}
}

// TestRuntimeFilterDeterminism checks byte-identity across host
// parallelism: filters on must return the same rows as filters off at
// ExecParallelism 1, 2 and 8, with identical modeled times at every
// parallelism (host workers must never leak into results or the clock).
func TestRuntimeFilterDeterminism(t *testing.T) {
	off := filterEngine(t, 4, false, 0, "")
	on := filterEngine(t, 4, true, 0, "")
	for _, qid := range []int{3, 5, 10} {
		sql := tpch.QueryByID(qid).SQL
		off.SetExecParallelism(1)
		base, err := off.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		want := rowsChecksum(base.Rows)
		var modeledOn string
		for _, par := range []int{1, 2, 8} {
			on.SetExecParallelism(par)
			res, err := on.Query(sql)
			if err != nil {
				t.Fatalf("Q%d par=%d: %v", qid, par, err)
			}
			if got := rowsChecksum(res.Rows); got != want {
				t.Errorf("Q%d par=%d: results diverge from filters-off sequential run", qid, par)
			}
			if modeledOn == "" {
				modeledOn = res.Modeled.String()
			} else if res.Modeled.String() != modeledOn {
				t.Errorf("Q%d par=%d: modeled time %v != %v at other parallelism", qid, par, res.Modeled, modeledOn)
			}
		}
	}
}

// TestRuntimeFilterUnderFaults checks that a site crash with failover
// produces the same rows with filters on as off: the pre-pass instances
// share the fragments' retry/failover machinery and filters are keyed to
// logical site identity, so recovery must not change what gets pruned.
func TestRuntimeFilterUnderFaults(t *testing.T) {
	const faultSpec = "seed=7;crash=2@5"
	clean := filterEngine(t, 4, false, 1, "")
	off := filterEngine(t, 4, false, 1, faultSpec)
	on := filterEngine(t, 4, true, 1, faultSpec)
	for _, qid := range []int{3, 5, 10} {
		sql := tpch.QueryByID(qid).SQL
		base, err := clean.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		want := rowsChecksum(base.Rows)
		resOff, err := off.Query(sql)
		if err != nil {
			t.Fatalf("Q%d filters=off under faults: %v", qid, err)
		}
		if rowsChecksum(resOff.Rows) != want {
			t.Fatalf("Q%d: filters-off faulted run diverges from clean run", qid)
		}
		resOn, err := on.Query(sql)
		if err != nil {
			t.Fatalf("Q%d filters=on under faults: %v", qid, err)
		}
		if rowsChecksum(resOn.Rows) != want {
			t.Errorf("Q%d: filters-on faulted run diverges from clean run", qid)
		}
		if resOn.Stats.Retries == 0 {
			t.Errorf("Q%d: fault plan injected no retries (crash point never reached?)", qid)
		}
	}
}

// TestRuntimeFilterExplainAnalyze checks the observability surface: the
// EXPLAIN ANALYZE report must carry per-filter summary lines with pruned
// counts and per-operator pruned= annotations.
func TestRuntimeFilterExplainAnalyze(t *testing.T) {
	on := filterEngine(t, 4, true, 0, "")
	res, err := on.Exec("EXPLAIN ANALYZE " + tpch.QueryByID(3).SQL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.PlanText, "runtime filter #") {
		t.Errorf("EXPLAIN ANALYZE lacks runtime filter summary:\n%s", res.PlanText)
	}
	if !strings.Contains(res.PlanText, "pruned=") {
		t.Errorf("EXPLAIN ANALYZE lacks pruned counts:\n%s", res.PlanText)
	}
	if !strings.Contains(res.PlanText, "rows_pruned=") {
		t.Errorf("EXPLAIN ANALYZE summary lacks rows_pruned total:\n%s", res.PlanText)
	}
}

// BenchmarkRuntimeFilter runs Q3 with filters off and on; the recorded
// deltas (modeled time, shipped bytes, rows pruned) are snapshotted in
// BENCH_runtime_filter.json.
func BenchmarkRuntimeFilter(b *testing.B) {
	for _, mode := range []struct {
		name    string
		filters bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			e := filterEngine(b, 4, mode.filters, 0, "")
			sql := tpch.QueryByID(3).SQL
			var res *gignite.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = e.Query(sql)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Modeled.Microseconds())/1000, "modeled_ms")
			b.ReportMetric(res.Stats.BytesShipped, "bytes_shipped")
			b.ReportMetric(float64(res.Stats.RowsPruned), "rows_pruned")
		})
	}
}
