package gignite

import (
	"context"
	"sync"

	"gignite/internal/plancache"
	"gignite/internal/sql"
)

// Stmt is a prepared SELECT: the statement is parsed, validated and
// optimized once at Prepare time, and each Query execution clones the
// retained plan, substitutes the `?` parameter values and runs it —
// skipping parse, bind and cost-based optimization entirely. A Stmt is
// safe for concurrent Query calls.
//
// When the engine's plan cache is enabled the Stmt shares its entries, so
// an inline Exec of the same (digest-normalized) text also hits the
// prepared plan and vice versa. With the cache disabled the Stmt retains
// its own plan. Either way the plan is replanned automatically when the
// catalog version moves (DDL, CREATE INDEX, ANALYZE).
type Stmt struct {
	e      *Engine
	src    string
	sel    *sql.SelectStmt
	digest uint64

	mu    sync.Mutex
	local *plancache.Entry // retained plan when the engine cache is disabled
}

// Prepare parses and plans a SELECT once for repeated execution.
// Parameter placeholders are written `?` and bound positionally at Query
// time; each placeholder's type is inferred from its comparison context
// at bind time, and arguments are coerced to it (or passed through when
// no hint was derivable).
func (e *Engine) Prepare(query string) (*Stmt, error) {
	if err := e.beginOp(); err != nil {
		return nil, err
	}
	defer e.endOp()
	sel, err := sql.ParseSelect(query)
	if err != nil {
		return nil, err
	}
	s := &Stmt{e: e, src: query, sel: sel, digest: plancache.Digest(query)}
	// Plan eagerly so Prepare surfaces binding/optimization errors and
	// Query's first call already skips planning.
	if _, _, err := s.entry(); err != nil {
		return nil, err
	}
	return s, nil
}

// entry resolves the statement's plan, replanning when the catalog
// version has moved since it was built. skipped reports whether a
// retained plan was reused.
func (s *Stmt) entry() (*plancache.Entry, bool, error) {
	e := s.e
	version := e.catalog.Version()
	if e.plans != nil {
		return e.plans.Get(s.digest, version, func() (*plancache.Entry, error) {
			return e.buildEntry(s.sel)
		})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.local != nil && s.local.Version == version {
		return s.local, true, nil
	}
	entry, err := e.buildEntry(s.sel)
	if err != nil {
		return nil, false, err
	}
	s.local = entry
	return entry, false, nil
}

// Query executes the prepared statement with the given parameter values
// (one per `?`, in order).
func (s *Stmt) Query(args ...Value) (*Result, error) {
	return s.QueryContext(context.Background(), args...)
}

// QueryContext is Query with cancellation (see Engine.ExecContext).
func (s *Stmt) QueryContext(ctx context.Context, args ...Value) (*Result, error) {
	if err := s.e.beginOp(); err != nil {
		return nil, err
	}
	defer s.e.endOp()
	res, _, err := s.e.run(ctx, s.sel, s.src, args, func() (*plancache.Entry, bool, bool, error) {
		entry, skipped, err := s.entry()
		// The entry is retained (by the Stmt or the cache), so the
		// execution must always clone it.
		return entry, skipped, true, err
	})
	return res, err
}

// SQL returns the statement text the Stmt was prepared from.
func (s *Stmt) SQL() string { return s.src }

// NumParams returns the number of `?` placeholders in the statement.
func (s *Stmt) NumParams() int { return s.sel.Params }
