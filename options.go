package gignite

import "time"

// Option mutates the engine configuration during Open. Options are
// applied in order, so later options win over earlier ones. Grouped
// options (WithCluster, WithGovernance, ...) apply their whole group:
// zero-valued fields inside the group mean "the engine default", not
// "keep the previous value".
type Option func(*Config)

// Open composes an engine from functional options — the v1 public API.
//
// The base configuration is ICPlus(1): the paper's improved planner and
// execution engine (§4, §5.1, §5.2) on a single site. Pass WithPreset
// (or WithConfig) first to start from a different system variant:
//
//	e := gignite.Open(
//	        gignite.WithPreset(gignite.ICPlusM, 4),
//	        gignite.WithPlanCache(64),
//	        gignite.WithAdaptive(gignite.AdaptiveOptions{}),
//	)
//
// The flat-Config constructor New remains for existing callers.
func Open(opts ...Option) *Engine {
	cfg := ICPlus(1)
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	return New(cfg)
}

// WithConfig replaces the entire configuration with cfg. Use it as the
// first option to layer further options over a hand-built Config (for
// example one produced by a harness).
func WithConfig(cfg Config) Option {
	return func(c *Config) { *c = cfg }
}

// WithPreset replaces the configuration with preset(sites), where preset
// is one of the paper's system constructors: IC, ICPlus or ICPlusM. Use
// it as the first option.
func WithPreset(preset func(sites int) Config, sites int) Option {
	return func(c *Config) { *c = preset(sites) }
}

// ClusterOptions groups the simulated-cluster topology knobs.
type ClusterOptions struct {
	// Sites is the number of processing sites; 0 keeps the current value
	// (a topology without sites is never meaningful).
	Sites int
	// Backups is the per-partition backup replica count (Config.Backups).
	Backups int
	// Parallelism bounds concurrent fragment instances on host
	// goroutines (Config.ExecParallelism); 0 uses GOMAXPROCS, 1 forces
	// the deterministic sequential path.
	Parallelism int
	// Faults is an optional deterministic fault-injection plan (see
	// ParseFaults).
	Faults *FaultPlan
}

// WithCluster applies the topology group.
func WithCluster(o ClusterOptions) Option {
	return func(c *Config) {
		if o.Sites > 0 {
			c.Sites = o.Sites
		}
		c.Backups = o.Backups
		c.ExecParallelism = o.Parallelism
		c.Faults = o.Faults
	}
}

// GovernanceOptions groups the resource-governance knobs of DESIGN.md
// §14. The zero value means "ungoverned": no admission bound, no memory
// pool, no per-query cap, no hedging, no wall-clock timeout.
type GovernanceOptions struct {
	// MaxConcurrentQueries bounds admitted SELECT executions (0 =
	// unbounded).
	MaxConcurrentQueries int
	// MemoryBudgetBytes is the engine-wide reservation pool (0 = none).
	MemoryBudgetBytes int64
	// QueryMemLimitBytes caps one query's estimated charge (0 =
	// unlimited).
	QueryMemLimitBytes int64
	// AdmissionTimeout bounds the admission-queue wait (0 = the
	// governor's default).
	AdmissionTimeout time.Duration
	// HedgeAfter enables hedged straggler attempts past the given
	// multiple of the wave median (0 = off; requires backups).
	HedgeAfter float64
	// QueryTimeout bounds each query's wall-clock time (0 = none).
	QueryTimeout time.Duration
}

// WithGovernance applies the resource-governance group.
func WithGovernance(o GovernanceOptions) Option {
	return func(c *Config) {
		c.MaxConcurrentQueries = o.MaxConcurrentQueries
		c.MemoryBudgetBytes = o.MemoryBudgetBytes
		c.QueryMemLimitBytes = o.QueryMemLimitBytes
		c.AdmissionTimeout = o.AdmissionTimeout
		c.HedgeAfter = o.HedgeAfter
		c.QueryTimeout = o.QueryTimeout
	}
}

// WithPlanCache sets the LRU plan-cache capacity in cached plans
// (DESIGN.md §15). 0 disables caching.
func WithPlanCache(size int) Option {
	return func(c *Config) { c.PlanCacheSize = size }
}

// AdaptiveOptions groups the adaptive-execution knobs of DESIGN.md §17.
type AdaptiveOptions struct {
	// Misestimate, when not 0 or 1, multiplies the planner's join-output
	// estimates — a fault-injection knob for demonstrating adaptivity
	// against controlled misestimation (Config.StatsMisestimate).
	Misestimate float64
}

// WithAdaptive enables mid-query re-optimization from runtime sketches
// and applies the adaptive group. Results stay byte-identical to the
// static plan; only the modeled time and the adaptive counters change.
func WithAdaptive(o AdaptiveOptions) Option {
	return func(c *Config) {
		c.AdaptiveExec = true
		c.StatsMisestimate = o.Misestimate
	}
}

// ObservabilityOptions groups the logging knobs.
type ObservabilityOptions struct {
	// SlowQueryThreshold logs queries whose modeled response time
	// reaches it (0 = off).
	SlowQueryThreshold time.Duration
	// Logger receives engine log lines (nil = no-op).
	Logger LogFunc
}

// WithObservability applies the observability group.
func WithObservability(o ObservabilityOptions) Option {
	return func(c *Config) {
		c.SlowQueryThreshold = o.SlowQueryThreshold
		c.Logger = o.Logger
	}
}

// WithRuntimeFilters toggles runtime join-filter pushdown (DESIGN.md
// §13).
func WithRuntimeFilters(on bool) Option {
	return func(c *Config) { c.RuntimeFilters = on }
}

// WithExecLimits sets the modeled work limit and per-instance row limit
// (Config.ExecWorkLimit / Config.ExecRowLimit). Zero keeps the engine
// defaults; negative work means unlimited.
func WithExecLimits(workLimit float64, rowLimit int64) Option {
	return func(c *Config) {
		if workLimit != 0 {
			c.ExecWorkLimit = workLimit
		}
		if rowLimit != 0 {
			c.ExecRowLimit = rowLimit
		}
	}
}
