package gignite

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"gignite/internal/types"
)

// setupEmployees builds a small schema with deterministic data on an
// engine.
func setupEmployees(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := New(cfg)
	mustExec(t, e, `CREATE TABLE dept (dept_id BIGINT PRIMARY KEY, dname VARCHAR(20))`)
	mustExec(t, e, `CREATE TABLE emp (
		id BIGINT PRIMARY KEY, name VARCHAR(30), dept_id BIGINT,
		salary DOUBLE, hired DATE)`)
	mustExec(t, e, `CREATE TABLE sales (
		sale_id BIGINT PRIMARY KEY, emp_id BIGINT, amount DOUBLE, sold DATE)`)

	depts := []Row{}
	for i := 0; i < 4; i++ {
		depts = append(depts, Row{types.NewInt(int64(i)), types.NewString(fmt.Sprintf("dept%d", i))})
	}
	if err := e.LoadTable("dept", depts); err != nil {
		t.Fatal(err)
	}
	emps := []Row{}
	for i := 0; i < 100; i++ {
		emps = append(emps, Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("emp%03d", i)),
			types.NewInt(int64(i % 4)),
			types.NewFloat(1000 + float64(i)*10),
			types.DateFromYMD(1990+i%10, 1+i%12, 1+i%28),
		})
	}
	if err := e.LoadTable("emp", emps); err != nil {
		t.Fatal(err)
	}
	sales := []Row{}
	for i := 0; i < 500; i++ {
		sales = append(sales, Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 100)),
			types.NewFloat(float64(i%97) * 3.5),
			types.DateFromYMD(1995+i%5, 1+i%12, 1+i%28),
		})
	}
	if err := e.LoadTable("sales", sales); err != nil {
		t.Fatal(err)
	}
	if err := e.Analyze(); err != nil {
		t.Fatal(err)
	}
	return e
}

func mustExec(t *testing.T, e *Engine, q string) *Result {
	t.Helper()
	res, err := e.Exec(q)
	if err != nil {
		t.Fatalf("Exec(%q): %v", q, err)
	}
	return res
}

// canonical renders a result set order-insensitively for comparison.
func canonical(rows []Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			if v.K == types.KindFloat {
				parts[j] = fmt.Sprintf("%.4f", v.F)
			} else {
				parts[j] = v.String()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func sameRows(t *testing.T, q string, a, b []Row) {
	t.Helper()
	ca, cb := canonical(a), canonical(b)
	if len(ca) != len(cb) {
		t.Fatalf("%q: row counts differ: %d vs %d", q, len(ca), len(cb))
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("%q: row %d differs:\n  %s\n  %s", q, i, ca[i], cb[i])
		}
	}
}

var crossCheckQueries = []string{
	`SELECT id, name FROM emp WHERE salary > 1500`,
	`SELECT COUNT(*), SUM(salary), AVG(salary), MIN(salary), MAX(salary) FROM emp`,
	`SELECT dept_id, COUNT(*) AS cnt, SUM(salary) FROM emp GROUP BY dept_id`,
	`SELECT e.name, d.dname FROM emp e, dept d WHERE e.dept_id = d.dept_id AND e.salary > 1900`,
	`SELECT d.dname, COUNT(*) AS n FROM emp e, dept d WHERE e.dept_id = d.dept_id
	 GROUP BY d.dname ORDER BY n DESC, d.dname`,
	`SELECT e.name FROM emp e WHERE EXISTS (SELECT 1 FROM sales s WHERE s.emp_id = e.id AND s.amount > 300)`,
	`SELECT e.name FROM emp e WHERE NOT EXISTS (SELECT 1 FROM sales s WHERE s.emp_id = e.id)`,
	`SELECT name FROM emp WHERE id IN (SELECT emp_id FROM sales WHERE amount > 330)`,
	`SELECT name FROM emp WHERE salary > (SELECT AVG(salary) FROM emp)`,
	`SELECT e.name FROM emp e WHERE e.salary < (SELECT 50 * AVG(s.amount) FROM sales s WHERE s.emp_id = e.id)`,
	`SELECT dept_id, COUNT(*) FROM emp GROUP BY dept_id HAVING COUNT(*) > 20`,
	`SELECT DISTINCT dept_id FROM emp WHERE salary > 1200`,
	`SELECT name, salary FROM emp ORDER BY salary DESC LIMIT 7`,
	`SELECT COUNT(DISTINCT dept_id) FROM emp`,
	`SELECT e.name FROM emp e LEFT JOIN sales s ON e.id = s.emp_id AND s.amount > 10000 WHERE s.sale_id IS NULL`,
	`SELECT SUM(CASE WHEN salary > 1500 THEN 1 ELSE 0 END) FROM emp`,
	`SELECT name FROM emp WHERE name LIKE 'emp00%'`,
	`SELECT name FROM emp WHERE hired BETWEEN DATE '1992-01-01' AND DATE '1994-12-31'`,
	`SELECT dept_id, AVG(salary) FROM emp WHERE id NOT IN (SELECT emp_id FROM sales WHERE amount > 320) GROUP BY dept_id`,
	`SELECT EXTRACT(YEAR FROM hired), COUNT(*) FROM emp GROUP BY EXTRACT(YEAR FROM hired)`,
}

// TestVariantsAgreeOnResults: IC, IC+ and IC+M must produce identical
// result sets on every query, at 1, 4 and 8 sites — the core correctness
// invariant behind the paper's performance comparison.
func TestVariantsAgreeOnResults(t *testing.T) {
	type sys struct {
		name string
		cfg  func(int) Config
	}
	systems := []sys{{"IC", IC}, {"IC+", ICPlus}, {"IC+M", ICPlusM}}
	for _, sites := range []int{1, 4} {
		// Reference: IC at a single site.
		ref := setupEmployees(t, IC(1))
		for _, s := range systems {
			e := setupEmployees(t, s.cfg(sites))
			for _, q := range crossCheckQueries {
				want, err := ref.Query(q)
				if err != nil {
					t.Fatalf("reference %q: %v", q, err)
				}
				got, err := e.Query(q)
				if err != nil {
					t.Fatalf("%s/%d sites %q: %v", s.name, sites, q, err)
				}
				sameRows(t, fmt.Sprintf("%s/%d sites: %s", s.name, sites, q), want.Rows, got.Rows)
			}
		}
	}
}

func TestOrderedResultsPreserveOrder(t *testing.T) {
	for _, cfg := range []Config{IC(4), ICPlus(4), ICPlusM(4)} {
		e := setupEmployees(t, cfg)
		res, err := e.Query(`SELECT name, salary FROM emp ORDER BY salary DESC LIMIT 5`)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 5 {
			t.Fatalf("rows = %d", len(res.Rows))
		}
		for i := 1; i < len(res.Rows); i++ {
			if res.Rows[i-1][1].Float() < res.Rows[i][1].Float() {
				t.Fatalf("order violated at %d: %v", i, res.Rows)
			}
		}
		if res.Rows[0][0].Str() != "emp099" {
			t.Errorf("top earner = %v", res.Rows[0])
		}
	}
}

func TestAggregateValues(t *testing.T) {
	e := setupEmployees(t, ICPlusM(4))
	res, err := e.Query(`SELECT COUNT(*), SUM(salary), MIN(id), MAX(id) FROM emp`)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	if r[0].Int() != 100 {
		t.Errorf("count = %v", r[0])
	}
	// SUM(1000 + i*10) for i in 0..99 = 100000 + 10*4950 = 149500.
	if r[1].Float() != 149500 {
		t.Errorf("sum = %v", r[1])
	}
	if r[2].Int() != 0 || r[3].Int() != 99 {
		t.Errorf("min/max = %v %v", r[2], r[3])
	}
}

func TestViewsUnsupported(t *testing.T) {
	e := setupEmployees(t, IC(2))
	_, err := e.Exec(`CREATE VIEW v AS SELECT id FROM emp`)
	if !errors.Is(err, ErrViewsUnsupported) {
		t.Errorf("err = %v", err)
	}
}

func TestInsertAndQuery(t *testing.T) {
	e := New(ICPlus(2))
	mustExec(t, e, `CREATE TABLE t (a BIGINT PRIMARY KEY, b VARCHAR(10))`)
	mustExec(t, e, `INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y'), (3, 'z')`)
	res := mustExec(t, e, `SELECT b FROM t WHERE a >= 2 ORDER BY a`)
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "y" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExplainOutput(t *testing.T) {
	e := setupEmployees(t, ICPlusM(4))
	plan, err := e.Explain(`SELECT e.name FROM emp e, sales s WHERE e.id = s.emp_id AND s.amount > 100`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fragment", "Join", "Sender", "Receiver"} {
		if !strings.Contains(plan, want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, plan)
		}
	}
}

func TestModeledTimePositiveAndICPlusFaster(t *testing.T) {
	q := `SELECT d.dname, SUM(s.amount) FROM emp e, dept d, sales s
		WHERE e.dept_id = d.dept_id AND s.emp_id = e.id GROUP BY d.dname`
	ic := setupEmployees(t, IC(4))
	icRes, err := ic.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	icp := setupEmployees(t, ICPlus(4))
	icpRes, err := icp.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if icRes.Modeled <= 0 || icpRes.Modeled <= 0 {
		t.Fatalf("modeled times: %v %v", icRes.Modeled, icpRes.Modeled)
	}
	sameRows(t, q, icRes.Rows, icpRes.Rows)
	t.Logf("IC=%v IC+=%v", icRes.Modeled, icpRes.Modeled)
}

func TestErrorPaths(t *testing.T) {
	e := New(IC(2))
	if _, err := e.Exec(`SELECT * FROM missing`); err == nil {
		t.Error("missing table accepted")
	}
	if _, err := e.Exec(`SELECTT 1`); err == nil {
		t.Error("bad syntax accepted")
	}
	mustExec(t, e, `CREATE TABLE t (a BIGINT PRIMARY KEY)`)
	if _, err := e.Exec(`CREATE TABLE t (a BIGINT PRIMARY KEY)`); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := e.Exec(`CREATE INDEX i ON t (zzz)`); err == nil {
		t.Error("bad index column accepted")
	}
	if _, err := e.Exec(`INSERT INTO missing VALUES (1)`); err == nil {
		t.Error("insert into missing table accepted")
	}
}

func TestWorkLimitTriggersTimeout(t *testing.T) {
	cfg := IC(2)
	cfg.ExecWorkLimit = 100 // absurdly small
	e := setupEmployees(t, cfg)
	_, err := e.Query(`SELECT COUNT(*) FROM emp e, sales s WHERE e.id = s.emp_id`)
	if !errors.Is(err, ErrQueryTimeout) {
		t.Errorf("err = %v, want timeout", err)
	}
}

func TestLogicalPlanDebugOutput(t *testing.T) {
	e := setupEmployees(t, ICPlus(2))
	out, err := e.LogicalPlan(`SELECT name FROM emp WHERE salary > 100 AND dept_id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Project", "Filter", "Scan emp"} {
		if !strings.Contains(out, want) {
			t.Errorf("logical plan missing %q:\n%s", want, out)
		}
	}
	if _, err := e.LogicalPlan("SELECT nope FROM emp"); err == nil {
		t.Error("bad query accepted")
	}
}

func TestConfigAccessors(t *testing.T) {
	cfg := ICPlusM(8)
	e := New(cfg)
	if e.Config().Sites != 8 || e.Config().VariantFragments != 2 {
		t.Errorf("config = %+v", e.Config())
	}
	if e.Catalog() == nil {
		t.Error("catalog accessor nil")
	}
	// Open normalizes degenerate settings.
	weird := New(Config{Sites: 0})
	if weird.Config().Sites != 1 {
		t.Errorf("sites not normalized: %d", weird.Config().Sites)
	}
	if weird.Config().ExecWorkLimit != DefaultExecWorkLimit {
		t.Errorf("work limit not defaulted: %v", weird.Config().ExecWorkLimit)
	}
}

func TestUnlimitedWorkConfig(t *testing.T) {
	cfg := ICPlus(2)
	cfg.ExecWorkLimit = -1 // explicit opt-out
	e := setupEmployees(t, cfg)
	if _, err := e.Query("SELECT COUNT(*) FROM sales"); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentQueries: one engine must serve parallel clients safely
// (the AQL protocol's terminals). Results must match the serial run.
func TestConcurrentQueries(t *testing.T) {
	e := setupEmployees(t, ICPlusM(4))
	queries := []string{
		`SELECT dept_id, COUNT(*) FROM emp GROUP BY dept_id`,
		`SELECT e.name, s.amount FROM emp e, sales s WHERE e.id = s.emp_id AND s.amount > 300`,
		`SELECT COUNT(*) FROM sales`,
		`SELECT name FROM emp WHERE salary > (SELECT AVG(salary) FROM emp)`,
	}
	want := make([][]string, len(queries))
	for i, q := range queries {
		res, err := e.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = canonical(res.Rows)
	}
	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < 6; i++ {
				qi := (w + i) % len(queries)
				res, err := e.Query(queries[qi])
				if err != nil {
					errs <- err
					return
				}
				got := canonical(res.Rows)
				if len(got) != len(want[qi]) {
					errs <- fmt.Errorf("worker %d query %d: %d rows, want %d",
						w, qi, len(got), len(want[qi]))
					return
				}
				for r := range got {
					if got[r] != want[qi][r] {
						errs <- fmt.Errorf("worker %d query %d row %d differs", w, qi, r)
						return
					}
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
