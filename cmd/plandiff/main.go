// Command plandiff prints one TPC-H query's fragmented physical plan under
// the IC baseline and under IC+, side by side — the fastest way to see
// which improvement changed a plan.
//
// Usage:
//
//	plandiff <query-number> [scale-factor]
package main

import (
	"fmt"
	"os"
	"strconv"

	"gignite"
	"gignite/internal/harness"
	"gignite/internal/tpch"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: plandiff <query-number> [scale-factor]")
		os.Exit(2)
	}
	id, err := strconv.Atoi(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "plandiff: bad query number %q\n", os.Args[1])
		os.Exit(2)
	}
	sf := 0.002
	if len(os.Args) > 2 {
		sf, _ = strconv.ParseFloat(os.Args[2], 64)
	}
	q := tpch.QueryByID(id)
	if q == nil {
		fmt.Fprintf(os.Stderr, "plandiff: no TPC-H query %d\n", id)
		os.Exit(2)
	}
	for _, sys := range []harness.System{harness.IC, harness.ICPlus} {
		cfg := harness.ConfigFor(sys, 4, sf)
		cfg.ExecParallelism = 1 // sequential: plan diffs stay byte-stable
		e := gignite.New(cfg)
		if err := tpch.Setup(e, sf); err != nil {
			panic(err)
		}
		plan, err := e.Explain(q.SQL)
		fmt.Printf("===== %s =====\n%s %v\n", sys, plan, err)
		if res, err := e.Query(q.SQL); err == nil {
			fmt.Printf(">>> modeled=%v work=%.0f bytes=%.0f fragments=%d instances=%d\n\n",
				res.Modeled, res.Stats.Work, res.Stats.BytesShipped,
				res.Stats.Fragments, res.Stats.Instances)
		} else {
			fmt.Printf(">>> execution error: %v\n\n", err)
		}
	}
}
