// Command gignite is an interactive/batch SQL shell over the engine: it
// loads a benchmark dataset (or starts empty), executes SQL from stdin,
// and can EXPLAIN plans under any system variant.
//
// Usage:
//
//	gignite [-system ic|ic+|ic+m] [-sites 4] [-backups 0] [-load tpch|ssb]
//	        [-sf 0.01] [-slowquery 100ms] [-admission N] [-maxmem BYTES]
//	        [-querymem BYTES] [-hedge FACTOR] [-plancache N]
//
// Then type SQL statements terminated by semicolons;
// \q quits, \t toggles timing output, \m prints the engine metrics
// snapshot, \cache prints plan-cache statistics. EXPLAIN ANALYZE <select>
// prints the executed plan annotated with estimated vs. actual row
// counts.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"gignite"
	"gignite/internal/engineflags"
	"gignite/internal/harness"
	"gignite/internal/ssb"
	"gignite/internal/tpch"
)

func main() {
	ef := engineflags.Bind(flag.CommandLine, engineflags.Defaults{System: "ic+m", PlanCache: 64})
	sites := flag.Int("sites", 4, "simulated processing sites")
	load := flag.String("load", "", "preload a benchmark: tpch or ssb")
	sf := flag.Float64("sf", 0.01, "benchmark scale factor")
	slow := flag.Duration("slowquery", 0, "log queries whose modeled time reaches this threshold (0 disables)")
	flag.Parse()

	opts, err := ef.Options(*sites)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gignite: %v\n", err)
		os.Exit(1)
	}
	opts = append(opts, gignite.WithExecLimits(harness.WorkLimitFor(*sf), 0))
	if *slow > 0 {
		opts = append(opts, gignite.WithObservability(gignite.ObservabilityOptions{
			SlowQueryThreshold: *slow,
			Logger: func(format string, args ...interface{}) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		}))
	}
	e := gignite.Open(opts...)

	switch strings.ToLower(*load) {
	case "tpch":
		fmt.Fprintf(os.Stderr, "loading TPC-H at SF %g...\n", *sf)
		if err := tpch.Setup(e, *sf); err != nil {
			fmt.Fprintf(os.Stderr, "gignite: %v\n", err)
			os.Exit(1)
		}
	case "ssb":
		fmt.Fprintf(os.Stderr, "loading SSB at SF %g...\n", *sf)
		if err := ssb.Setup(e, *sf); err != nil {
			fmt.Fprintf(os.Stderr, "gignite: %v\n", err)
			os.Exit(1)
		}
	case "":
	default:
		fmt.Fprintf(os.Stderr, "gignite: unknown benchmark %q\n", *load)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr, "gignite %s shell on %d sites; \\q quits, \\t toggles timing, \\m prints metrics, \\cache prints plan-cache stats\n",
		strings.ToUpper(ef.System), *sites)
	timing := true
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() { fmt.Fprint(os.Stderr, "gignite> ") }
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		switch trimmed {
		case `\q`:
			return
		case `\t`:
			timing = !timing
			fmt.Fprintf(os.Stderr, "timing %v\n", timing)
			prompt()
			continue
		case `\m`:
			fmt.Print(e.Metrics().Text())
			prompt()
			continue
		case `\cache`:
			if s, enabled := e.PlanCacheStats(); enabled {
				fmt.Printf("plan cache: %d/%d plans, %d hits, %d misses, %d evictions\n",
					s.Size, s.Capacity, s.Hits, s.Misses, s.Evictions)
			} else {
				fmt.Println("plan cache: disabled (-plancache 0)")
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			continue
		}
		stmt := strings.TrimSpace(buf.String())
		buf.Reset()
		if stmt == "" || stmt == ";" {
			prompt()
			continue
		}
		runStatement(e, stmt, timing)
		prompt()
	}
}

func runStatement(e *gignite.Engine, stmt string, timing bool) {
	res, err := e.Exec(stmt)
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	if res.PlanText != "" {
		fmt.Println(res.PlanText)
		return
	}
	if len(res.Columns) > 0 {
		fmt.Println(strings.Join(res.Columns, " | "))
		for _, r := range res.Rows {
			parts := make([]string, len(r))
			for i, v := range r {
				parts[i] = v.String()
			}
			fmt.Println(strings.Join(parts, " | "))
		}
		fmt.Printf("(%d rows)\n", len(res.Rows))
	} else {
		fmt.Println("ok")
	}
	if timing && res.Stats.Modeled > 0 {
		fmt.Printf("modeled time: %v  (work=%.0f, shipped=%.0f bytes, %d fragments, %d instances, %d spans)\n",
			res.Stats.Modeled, res.Stats.Work, res.Stats.BytesShipped,
			res.Stats.Fragments, res.Stats.Instances, res.Stats.Spans)
	}
}
