// Command gignited is gignite's network daemon: it serves the engine
// over the binary wire protocol (DESIGN.md §16) so database/sql clients
// using gignite/driver can connect over TCP, and exposes an HTTP sidecar
// with /metrics (Prometheus text format) and /healthz.
//
// Usage:
//
//	gignited [-addr 127.0.0.1:7468] [-http 127.0.0.1:7469]
//	         [-system ic|ic+|ic+m] [-sites 4] [-load tpch|ssb] [-sf 0.01]
//	         [-maxconns N] [-token SECRET] [-idle 5m]
//	         [-admission N] [-maxmem BYTES] [-querymem BYTES]
//	         [-plancache N] [-filters] [-drain 30s] [-quiet]
//
// On SIGINT/SIGTERM the daemon drains gracefully: the listener closes,
// in-flight queries finish and stream out, then the engine closes. A
// second signal — or the -drain deadline — force-closes remaining
// sessions (canceling their queries). A clean drain exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gignite"
	"gignite/internal/engineflags"
	"gignite/internal/harness"
	"gignite/internal/server"
	"gignite/internal/ssb"
	"gignite/internal/tpch"
)

func main() {
	os.Exit(run())
}

func run() int {
	ef := engineflags.Bind(flag.CommandLine, engineflags.Defaults{System: "ic+m", PlanCache: 64})
	addr := flag.String("addr", "127.0.0.1:7468", "wire-protocol listen address")
	httpAddr := flag.String("http", "127.0.0.1:7469", "HTTP sidecar address for /metrics and /healthz (empty disables)")
	sites := flag.Int("sites", 4, "simulated processing sites")
	load := flag.String("load", "", "preload a benchmark: tpch or ssb")
	sf := flag.Float64("sf", 0.01, "benchmark scale factor")
	maxconns := flag.Int("maxconns", 0, "max concurrently open client connections (0 = unbounded)")
	token := flag.String("token", "", "require this auth token in the client handshake")
	idle := flag.Duration("idle", server.DefaultIdleTimeout, "close sessions idle for this long (negative = never)")
	drain := flag.Duration("drain", gignite.DefaultDrainTimeout, "graceful-drain deadline after SIGTERM")
	quiet := flag.Bool("quiet", false, "suppress per-connection logging")
	flag.Parse()

	opts, err := ef.Options(*sites)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gignited: %v\n", err)
		return 2
	}
	opts = append(opts, gignite.WithExecLimits(harness.WorkLimitFor(*sf), 0))

	var log *server.Logger
	if !*quiet {
		log = server.NewLogger(os.Stderr)
	}
	// Engine logs (slow queries etc.) share the serialized writer.
	if log != nil {
		opts = append(opts, gignite.WithObservability(gignite.ObservabilityOptions{Logger: log.Func("engine")}))
	}
	eng := gignite.Open(opts...)

	switch strings.ToLower(*load) {
	case "tpch":
		log.Printf("loading TPC-H at SF %g...", *sf)
		if err := tpch.Setup(eng, *sf); err != nil {
			fmt.Fprintf(os.Stderr, "gignited: %v\n", err)
			return 1
		}
	case "ssb":
		log.Printf("loading SSB at SF %g...", *sf)
		if err := ssb.Setup(eng, *sf); err != nil {
			fmt.Fprintf(os.Stderr, "gignited: %v\n", err)
			return 1
		}
	case "":
	default:
		fmt.Fprintf(os.Stderr, "gignited: unknown benchmark %q\n", *load)
		return 2
	}

	srv := server.New(eng, server.Config{
		Addr:        *addr,
		MaxConns:    *maxconns,
		AuthToken:   *token,
		IdleTimeout: *idle,
		Logger:      log,
	})
	if err := srv.Listen(); err != nil {
		fmt.Fprintf(os.Stderr, "gignited: %v\n", err)
		return 1
	}
	log.Printf("serving wire protocol on %s", srv.Addr())

	var httpSrv *http.Server
	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_, _ = fmt.Fprint(w, eng.Metrics().Prometheus())
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			_, _ = fmt.Fprintln(w, "ok")
		})
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gignited: http sidecar: %v\n", err)
			return 1
		}
		httpSrv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := httpSrv.Serve(hln); err != nil && err != http.ErrServerClosed {
				log.Printf("http sidecar: %v", err)
			}
		}()
		log.Printf("metrics on http://%s/metrics", hln.Addr())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	select {
	case sig := <-sigc:
		log.Printf("received %v, draining (deadline %v)...", sig, *drain)
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintf(os.Stderr, "gignited: %v\n", err)
			return 1
		}
		return 0
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	go func() {
		// A second signal cuts the drain short.
		<-sigc
		log.Printf("second signal, force-closing")
		cancel()
	}()

	code := 0
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain: %v", err)
		code = 1
	}
	if httpSrv != nil {
		_ = httpSrv.Close()
	}
	if err := eng.CloseContext(ctx); err != nil {
		log.Printf("engine close: %v", err)
		code = 1
	}
	log.Printf("shutdown complete")
	return code
}
