package main

import (
	"gignite"
	"gignite/internal/harness"
	"gignite/internal/tpch"
)

// expEnv is the shared experiment-environment builder: one experiment
// point (system, sites, scale factor, host parallelism) from which the
// smoke experiments derive identically loaded engines that differ only
// in the knobs under test. Loading goes through tpch.Setup so every
// engine sees the same deterministic dataset; a load failure is fatal
// under the experiment's name.
type expEnv struct {
	name  string
	sys   harness.System
	sites int
	sf    float64
	par   int
}

// open builds and loads one engine, applying mut (which may be nil) to
// the point's base configuration before opening.
func (x expEnv) open(mut func(*gignite.Config)) *gignite.Engine {
	cfg := harness.ConfigFor(x.sys, x.sites, x.sf)
	cfg.ExecParallelism = x.par
	if mut != nil {
		mut(&cfg)
	}
	e := gignite.New(cfg)
	if err := tpch.Setup(e, x.sf); err != nil {
		fatalf("%s: %v", x.name, err)
	}
	return e
}
