package main

import (
	"context"
	"database/sql"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"gignite"
	gdriver "gignite/driver"
	"gignite/internal/harness"
	"gignite/internal/server"
	"gignite/internal/tpch"
	"gignite/internal/wire"
)

// serveIdentityQueries are the acceptance queries whose network results
// must match in-process execution byte for byte.
var serveIdentityQueries = []int{1, 3, 5, 10}

// serveSlowSQL keeps a query slot busy long enough to race against: the
// triple self-equi-join fans every order's lineitems out cubically.
const serveSlowSQL = `SELECT count(*), sum(l1.l_quantity) FROM lineitem l1, lineitem l2, lineitem l3
WHERE l1.l_orderkey = l2.l_orderkey AND l2.l_orderkey = l3.l_orderkey`

// runServe is the serving-layer smoke check (DESIGN.md §16): a wire
// server on a random loopback port, 8 concurrent database/sql clients,
// byte-identical rows vs in-process execution with the plan cache on and
// off, prepared statements skipping planning (observed through the HTTP
// /metrics endpoint), overload surfacing as a typed wire error, a
// mid-stream client kill releasing its governor lease, a graceful drain
// finishing the in-flight query, and zero leaked goroutines or
// connections at the end. It exits non-zero on any violation — the CI
// serve-smoke job relies on that.
func runServe(opts harness.Options, metricsOut string) {
	sf := opts.SFs[0]
	sites := opts.Sites[0]
	sk := &smoke{name: "serve"}
	baseGoroutines := runtime.NumGoroutine()

	open := func(mut func(*gignite.Config)) *gignite.Engine {
		cfg := harness.ConfigFor(harness.ICPM, sites, sf)
		cfg.ExecParallelism = opts.Env.Parallelism
		// The huge per-query budget only turns memory accounting on, so
		// mem_reserved_bytes exists for the lease-release check.
		cfg.QueryMemLimitBytes = 1 << 40
		if mut != nil {
			mut(&cfg)
		}
		e := gignite.New(cfg)
		if err := tpch.Setup(e, sf); err != nil {
			fatalf("serve: %v", err)
		}
		return e
	}
	startServer := func(eng *gignite.Engine, cfg server.Config) *server.Server {
		srv := server.New(eng, cfg)
		if err := srv.Listen(); err != nil {
			fatalf("serve: %v", err)
		}
		go func() { _ = srv.Serve() }()
		return srv
	}
	shutdown := func(srv *server.Server) {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			sk.failf("shutdown: %v", err)
		}
	}

	// Phase A: byte-identity under concurrency, plan cache off then on.
	for _, cache := range []int{0, 64} {
		eng := open(func(cfg *gignite.Config) { cfg.PlanCacheSize = cache })
		want := make(map[int]string, len(serveIdentityQueries))
		for _, id := range serveIdentityQueries {
			res, err := eng.Query(tpch.QueryByID(id).SQL)
			if err != nil {
				fatalf("serve: in-process Q%d: %v", id, err)
			}
			want[id] = rowsText(res.Rows)
		}
		srv := startServer(eng, server.Config{})
		db := sql.OpenDB(&gdriver.Connector{Addr: srv.Addr().String()})
		db.SetMaxOpenConns(8)
		const clients = 8
		var wg sync.WaitGroup
		var mu sync.Mutex
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for j, id := range serveIdentityQueries {
					got, err := sqlRowsText(db, tpch.QueryByID(id).SQL)
					mu.Lock()
					switch {
					case err != nil:
						sk.failf("cache=%d client %d run %d Q%d: %v", cache, c, j, id, err)
					case got != want[id]:
						sk.failf("cache=%d client %d Q%d: network rows differ from in-process", cache, c, id)
					}
					mu.Unlock()
				}
			}(c)
		}
		wg.Wait()
		if err := db.Close(); err != nil {
			sk.failf("cache=%d: close pool: %v", cache, err)
		}
		shutdown(srv)
		if err := eng.Close(); err != nil {
			sk.failf("cache=%d: engine close: %v", cache, err)
		}
		fmt.Printf("phase A (identity, cache=%d): %d clients x %d queries byte-identical\n",
			cache, clients, len(serveIdentityQueries))
	}

	// Phase B: prepared statements over the wire skip planning, observed
	// through the HTTP /metrics endpoint a la gignited.
	engB := open(nil)
	srvB := startServer(engB, server.Config{})
	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("serve: %v", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		_, _ = fmt.Fprint(w, engB.Metrics().Prometheus())
	})
	httpSrv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = httpSrv.Serve(hln) }()

	dbB := sql.OpenDB(&gdriver.Connector{Addr: srvB.Addr().String()})
	const preparedRuns = 5
	st, err := dbB.Prepare(`SELECT n_name FROM nation WHERE n_nationkey = ?`)
	if err != nil {
		fatalf("serve: prepare: %v", err)
	}
	for i := 0; i < preparedRuns; i++ {
		var name string
		if err := st.QueryRow(int64(i)).Scan(&name); err != nil {
			fatalf("serve: prepared run %d: %v", i, err)
		}
	}
	_ = st.Close()
	promText, err := fetchMetrics("http://" + hln.Addr().String() + "/metrics")
	if err != nil {
		fatalf("serve: %v", err)
	}
	if strings.TrimSpace(promText) == "" {
		sk.failf("/metrics returned an empty body")
	}
	skipped := promValue(promText, "queries_planning_skipped_total")
	if skipped < preparedRuns-1 {
		sk.failf("queries_planning_skipped_total = %g after %d executions of one prepared statement; want >= %d",
			skipped, preparedRuns, preparedRuns-1)
	}
	fmt.Printf("phase B (prepared): %g of %d executions skipped planning (via /metrics)\n",
		skipped, preparedRuns)
	_ = dbB.Close()
	_ = httpSrv.Close()
	shutdown(srvB)
	metricsArtifact := promText
	if err := engB.Close(); err != nil {
		sk.failf("phase B engine close: %v", err)
	}

	// Phase C: overload surfaces as a typed wire error through the driver.
	engC := open(func(cfg *gignite.Config) {
		cfg.MaxConcurrentQueries = 1
		cfg.AdmissionTimeout = 50 * time.Millisecond
		cfg.ExecWorkLimit = -1
		cfg.ExecRowLimit = 1 << 40
	})
	srvC := startServer(engC, server.Config{})
	dbC := sql.OpenDB(&gdriver.Connector{Addr: srvC.Addr().String()})
	dbC.SetMaxOpenConns(2)
	blockerCtx, cancelBlocker := context.WithCancel(context.Background())
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		var a, b interface{}
		_ = dbC.QueryRowContext(blockerCtx, serveSlowSQL).Scan(&a, &b)
	}()
	if !waitGauge(engC, "queries_inflight", 1, 10*time.Second) {
		sk.failf("phase C: blocker query never admitted")
	} else {
		_, err := dbC.Query(tpch.QueryByID(1).SQL)
		if !errors.Is(err, gignite.ErrOverloaded) {
			sk.failf("phase C: want gignite.ErrOverloaded over the wire, got %v", err)
		} else {
			fmt.Println("phase C (overload): shed query surfaced as ErrOverloaded through database/sql")
		}
	}
	cancelBlocker()
	<-blockerDone
	_ = dbC.Close()
	shutdown(srvC)

	// Phase D: killing the client mid-query cancels it server-side and
	// releases the governor lease.
	engD := open(func(cfg *gignite.Config) {
		cfg.ExecWorkLimit = -1
		cfg.ExecRowLimit = 1 << 40
	})
	srvD := startServer(engD, server.Config{})
	conn, err := net.Dial("tcp", srvD.Addr().String())
	if err != nil {
		fatalf("serve: %v", err)
	}
	var enc wire.Encoder
	enc.U32(wire.Magic)
	enc.U8(wire.Version)
	enc.Str("")
	if err := wire.WriteFrame(conn, wire.FrameHello, enc.Bytes()); err != nil {
		fatalf("serve: %v", err)
	}
	if typ, _, err := wire.ReadFrame(conn, 0); err != nil || typ != wire.FrameHelloOK {
		fatalf("serve: handshake: type=%#x err=%v", typ, err)
	}
	enc.Reset()
	enc.Str(serveSlowSQL)
	if err := wire.WriteFrame(conn, wire.FrameQuery, enc.Bytes()); err != nil {
		fatalf("serve: %v", err)
	}
	if !waitGauge(engD, "queries_inflight", 1, 10*time.Second) {
		sk.failf("phase D: slow query never admitted")
	}
	_ = conn.Close() // hard kill mid-execution
	if !waitGauge(engD, "queries_inflight", 0, 20*time.Second) ||
		!waitGauge(engD, "mem_reserved_bytes", 0, 20*time.Second) {
		m := engD.Metrics()
		sk.failf("phase D: lease not released after client kill: inflight=%g reserved=%g",
			m.Gauges["queries_inflight"], m.Gauges["mem_reserved_bytes"])
	} else {
		fmt.Println("phase D (kill): client disconnect canceled the query and freed its lease")
	}
	shutdown(srvD)
	_ = engD.Close()

	// Phase E: graceful drain finishes the in-flight query, then the
	// engine closes cleanly (gignited's SIGTERM path, exit 0).
	engE := open(nil)
	wantE, err := engE.Query(tpch.QueryByID(3).SQL)
	if err != nil {
		fatalf("serve: %v", err)
	}
	srvE := startServer(engE, server.Config{})
	dbE := sql.OpenDB(&gdriver.Connector{Addr: srvE.Addr().String()})
	type qres struct {
		text string
		err  error
	}
	resCh := make(chan qres, 1)
	go func() {
		text, err := sqlRowsText(dbE, tpch.QueryByID(3).SQL)
		resCh <- qres{text, err}
	}()
	time.Sleep(10 * time.Millisecond)
	shutdown(srvE) // fails the smoke if the drain errors
	r := <-resCh
	switch {
	case r.err != nil:
		sk.failf("phase E: in-flight query dropped during drain: %v", r.err)
	case r.text != rowsText(wantE.Rows):
		sk.failf("phase E: drained query returned different rows")
	default:
		fmt.Println("phase E (drain): in-flight query completed and streamed during shutdown")
	}
	_ = dbE.Close()
	if err := engE.Close(); err != nil {
		sk.failf("phase E: engine close after drain: %v", err)
	}
	_ = engC.Close()

	// Phase F: nothing leaked — all sessions gone, goroutines back to
	// (about) the baseline.
	for _, check := range []struct {
		name string
		eng  *gignite.Engine
	}{{"B", engB}, {"D", engD}, {"E", engE}} {
		if open := check.eng.Metrics().Gauges["conns_open"]; open != 0 {
			sk.failf("phase F: engine %s still reports %g open connections", check.name, open)
		}
	}
	leaked := -1
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseGoroutines+2 {
			leaked = 0
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if leaked != 0 {
		sk.failf("phase F: %d goroutines at exit vs %d at start; serving layer leaked",
			runtime.NumGoroutine(), baseGoroutines)
	} else {
		fmt.Println("phase F (leaks): goroutines and connections back to baseline")
	}

	if metricsOut != "" {
		artifact := map[string]interface{}{
			"prometheus":      metricsArtifact,
			"engine_snapshot": engB.Metrics(),
		}
		data, err := json.MarshalIndent(artifact, "", "  ")
		if err != nil {
			fatalf("serve: marshal metrics: %v", err)
		}
		if err := os.WriteFile(metricsOut, data, 0o644); err != nil {
			fatalf("serve: %v", err)
		}
		fmt.Fprintf(os.Stderr, "benchrunner: wrote metrics to %s\n", metricsOut)
	}
	sk.exit()
}

// runServeAQL prints the harness's multi-client-over-TCP AQL report.
func runServeAQL(opts harness.Options, clients int) {
	rep, err := harness.ServeAQL(harness.ServeAQLOptions{
		Clients: []int{2, clients},
		SF:      opts.SFs[0],
		Sites:   opts.Sites[0],
		Env:     opts.Env,
	})
	if rep != nil {
		fmt.Println(rep.Render())
	}
	if err != nil {
		fatalf("serveaql: %v", err)
	}
}

// sqlRowsText renders a database/sql result exactly like
// types.Row.String renders engine rows, so network results can be
// compared byte for byte against in-process execution.
func sqlRowsText(db *sql.DB, query string) (string, error) {
	rows, err := db.Query(query)
	if err != nil {
		return "", err
	}
	defer func() { _ = rows.Close() }()
	cols, err := rows.Columns()
	if err != nil {
		return "", err
	}
	vals := make([]interface{}, len(cols))
	for i := range vals {
		vals[i] = new(interface{})
	}
	var sb strings.Builder
	for rows.Next() {
		if err := rows.Scan(vals...); err != nil {
			return "", err
		}
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = sqlValueText(*(v.(*interface{})))
		}
		sb.WriteString("[" + strings.Join(parts, ", ") + "]\n")
	}
	if err := rows.Err(); err != nil {
		return "", err
	}
	return sb.String(), nil
}

func sqlValueText(v interface{}) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		if x {
			return "true"
		}
		return "false"
	case string:
		return x
	case []byte:
		return string(x)
	case time.Time:
		return x.Format("2006-01-02")
	default:
		return fmt.Sprintf("%v", x)
	}
}

// fetchMetrics GETs a metrics endpoint and returns the body.
func fetchMetrics(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return string(body), nil
}

// promValue extracts one sample from Prometheus text exposition.
func promValue(text, name string) float64 {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
			if err == nil {
				return v
			}
		}
	}
	return -1
}

// waitGauge polls an engine gauge until it reaches want or the timeout
// elapses.
func waitGauge(e *gignite.Engine, name string, want float64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if e.Metrics().Gauges[name] == want {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(20 * time.Millisecond)
	}
}
