// Command benchrunner regenerates the paper's evaluation artifacts: one
// experiment per table and figure of §6, printed as aligned text tables.
//
// Usage:
//
//	benchrunner -exp fig7|fig8|fig9|fig10|fig11|table3|failures|ablate|all
//	            [-sf 0.005,0.01] [-sites 4,8] [-par 0]
//	            [-backups 0] [-faults SPEC] [-timeout 0]
//
// Response times are deterministic modeled times from the simnet cost
// clock (see DESIGN.md), so runs are reproducible across hosts — and
// independent of -par, which only sets how many host goroutines execute
// fragment instances (wall-clock speed of the run itself).
//
// Fault-tolerance experiments (DESIGN.md §fault model): -backups keeps N
// backup replicas per partition, -faults injects a deterministic fault
// plan (e.g. "seed=7;crash=2@4;sendfail=0.05"), and -timeout bounds each
// query's wall-clock time. With backups ≥ 1 the modeled times include
// retry recovery cost; with backups = 0 a crashed site turns into clean
// query errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gignite"
	"gignite/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig7, fig8, fig9, fig10, fig11, table3, failures, ablate, scaling, all")
	sfs := flag.String("sf", "0.005,0.01", "comma-separated scale factors")
	sites := flag.String("sites", "4,8", "comma-separated site counts")
	par := flag.Int("par", 0, "host execution parallelism: 0 = GOMAXPROCS, 1 = sequential")
	backups := flag.Int("backups", 0, "backup replicas per partition (0 = no redundancy)")
	faultSpec := flag.String("faults", "", `fault plan, e.g. "seed=7;crash=2@4;slow=1x2;sendfail=0.05"`)
	timeout := flag.Duration("timeout", 0, "per-query wall-clock deadline (0 = none)")
	flag.Parse()

	plan, err := gignite.ParseFaults(*faultSpec)
	if err != nil {
		fatalf("bad -faults spec: %v", err)
	}

	opts := harness.Options{Env: harness.NewEnv()}
	opts.Env.Parallelism = *par
	opts.Env.Backups = *backups
	opts.Env.Faults = plan
	opts.Env.Timeout = *timeout
	for _, s := range strings.Split(*sfs, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fatalf("bad -sf value %q: %v", s, err)
		}
		opts.SFs = append(opts.SFs, v)
	}
	for _, s := range strings.Split(*sites, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fatalf("bad -sites value %q: %v", s, err)
		}
		opts.Sites = append(opts.Sites, v)
	}

	type experiment struct {
		name string
		run  func(harness.Options) (*harness.Report, error)
	}
	all := []experiment{
		{"fig7", harness.Fig7},
		{"fig8", harness.Fig8},
		{"fig9", harness.Fig9},
		{"fig10", harness.Fig10},
		{"table3", harness.Table3},
		{"fig11", harness.Fig11},
		{"failures", harness.FailureMatrix},
		{"ablate", harness.Ablation},
		{"scaling", harness.Scaling},
	}
	ran := false
	for _, e := range all {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran = true
		rep, err := e.run(opts)
		if err != nil {
			fatalf("%s: %v", e.name, err)
		}
		fmt.Println(rep.Render())
	}
	if !ran {
		fatalf("unknown experiment %q", *exp)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchrunner: "+format+"\n", args...)
	os.Exit(1)
}
