// Command benchrunner regenerates the paper's evaluation artifacts: one
// experiment per table and figure of §6, printed as aligned text tables.
//
// Usage:
//
//	benchrunner -exp fig7|fig8|fig9|fig10|fig11|table3|failures|ablate|obs|filters|overload|plancache|benchgate|all
//	            [-sf 0.005,0.01] [-sites 4,8] [-par 0]
//	            [-backups 0] [-faults SPEC] [-timeout 0] [-filters] [-plancache 0]
//	            [-system ic+m] [-queries 1,3] [-metrics FILE] [-trace FILE]
//	            [-admission 2] [-clients 8] [-maxmem 0] [-querymem 0] [-hedge 2]
//	            [-baseline BENCH_gate.json] [-update-baseline]
//
// The obs experiment runs the selected TPC-H queries once on one system
// and emits observability artifacts: -metrics writes the per-query and
// cumulative metrics JSON (schema harness.MetricsSchema), -trace writes
// the distributed traces as a Chrome trace_event file (load it in
// Perfetto or chrome://tracing). benchrunner exits non-zero when the
// estimate-vs-actual operator report comes back empty — the CI
// observability smoke job relies on that.
//
// The overload experiment is the resource-governance smoke check
// (DESIGN.md §14): concurrent clients race TPC-H queries into an engine
// whose memory pool holds about two queries. Shed queries must carry
// ErrOverloaded, admitted queries must return rows byte-identical to the
// ungoverned run, a patient queue must drain completely, and hedged
// straggler attempts must cut the modeled makespan with one slow site.
// It exits non-zero on any violation — the CI overload-smoke job relies
// on that.
//
// The filters experiment is the runtime join-filter smoke check
// (DESIGN.md §13): it runs Q3/Q5/Q10 with filters off and on against the
// same data and prints rows, shipped bytes, modeled time and pruned-row
// counts side by side. It exits non-zero if any query's results diverge
// between the two runs, or if Q3 fails to ship fewer bytes with filters
// on — the CI filters-smoke job relies on that.
//
// The plancache experiment is the plan-cache smoke check (DESIGN.md §15):
// each query runs once cold and ~20 times hot against a cache-enabled
// engine, plus once against a cache-disabled engine. It exits non-zero
// unless every hot run skipped planning, the mean hot plan-acquisition
// time is at least 90% below the cold planning time, and the rows are
// byte-identical cache on and off — the CI plancache-smoke job relies on
// that.
//
// The benchgate experiment is the CI benchmark-regression gate: it runs
// the baseline file's query set and compares the deterministic modeled
// times and shipped bytes against the committed BENCH_gate.json, failing
// on any regression beyond the file's tolerance. -update-baseline rewrites
// the baseline from the current measurements (commit the diff).
//
// -filters enables runtime join-filter pushdown and -plancache a plan
// cache of the given capacity for the table/figure experiments (the
// modeled times then include filter build cost and the shipped-volume
// savings).
//
// Response times are deterministic modeled times from the simnet cost
// clock (see DESIGN.md), so runs are reproducible across hosts — and
// independent of -par, which only sets how many host goroutines execute
// fragment instances (wall-clock speed of the run itself).
//
// Fault-tolerance experiments (DESIGN.md §fault model): -backups keeps N
// backup replicas per partition, -faults injects a deterministic fault
// plan (e.g. "seed=7;crash=2@4;sendfail=0.05"), and -timeout bounds each
// query's wall-clock time. With backups ≥ 1 the modeled times include
// retry recovery cost; with backups = 0 a crashed site turns into clean
// query errors.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"gignite"
	"gignite/internal/engineflags"
	"gignite/internal/harness"
	"gignite/internal/obs"
	"gignite/internal/tpch"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig7, fig8, fig9, fig10, fig11, table3, failures, ablate, scaling, obs, filters, overload, plancache, adaptive, benchgate, serve, serveaql, all")
	ef := engineflags.Bind(flag.CommandLine, engineflags.Defaults{System: "ic+m", Admission: 2, Hedge: 2})
	sfs := flag.String("sf", "0.005,0.01", "comma-separated scale factors")
	sites := flag.String("sites", "4,8", "comma-separated site counts")
	timeout := flag.Duration("timeout", 0, "per-query wall-clock deadline (0 = none)")
	queries := flag.String("queries", "", "obs experiment: comma-separated TPC-H query ids (empty = paper set)")
	metricsOut := flag.String("metrics", "", "obs/overload experiment: write the metrics JSON to this file")
	traceOut := flag.String("trace", "", "obs experiment: write Chrome trace_event JSON to this file")
	clients := flag.Int("clients", 8, "overload experiment: concurrent client goroutines")
	baseline := flag.String("baseline", "BENCH_gate.json", "benchgate experiment: committed baseline file")
	updateBaseline := flag.Bool("update-baseline", false, "benchgate experiment: rewrite the baseline from current measurements")
	flag.Parse()

	plan, err := gignite.ParseFaults(ef.Faults)
	if err != nil {
		fatalf("bad -faults spec: %v", err)
	}

	opts := harness.Options{Env: harness.NewEnv()}
	opts.Env.Parallelism = ef.Parallelism
	opts.Env.Backups = ef.Backups
	opts.Env.Faults = plan
	opts.Env.Timeout = *timeout
	opts.Env.Filters = ef.Filters
	opts.Env.PlanCache = ef.PlanCache
	opts.Env.Adaptive = ef.Adaptive
	opts.Env.Misestimate = ef.Misestimate
	for _, s := range strings.Split(*sfs, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fatalf("bad -sf value %q: %v", s, err)
		}
		opts.SFs = append(opts.SFs, v)
	}
	for _, s := range strings.Split(*sites, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fatalf("bad -sites value %q: %v", s, err)
		}
		opts.Sites = append(opts.Sites, v)
	}

	if *exp == "obs" {
		runObs(opts, ef.System, *queries, *metricsOut, *traceOut)
		return
	}
	if *exp == "filters" {
		runFilters(opts, *queries)
		return
	}
	if *exp == "overload" {
		runOverload(opts, ef.Admission, *clients, ef.MaxMem, ef.QueryMem, ef.Hedge, *metricsOut)
		return
	}
	if *exp == "adaptive" {
		runAdaptive(opts, ef.Misestimate, *queries, *metricsOut)
		return
	}
	if *exp == "plancache" {
		runPlanCache(opts, *queries, *metricsOut)
		return
	}
	if *exp == "benchgate" {
		runBenchGate(opts, *baseline, *metricsOut, *updateBaseline)
		return
	}
	if *exp == "serve" {
		runServe(opts, *metricsOut)
		return
	}
	if *exp == "serveaql" {
		runServeAQL(opts, *clients)
		return
	}

	type experiment struct {
		name string
		run  func(harness.Options) (*harness.Report, error)
	}
	all := []experiment{
		{"fig7", harness.Fig7},
		{"fig8", harness.Fig8},
		{"fig9", harness.Fig9},
		{"fig10", harness.Fig10},
		{"table3", harness.Table3},
		{"fig11", harness.Fig11},
		{"failures", harness.FailureMatrix},
		{"ablate", harness.Ablation},
		{"scaling", harness.Scaling},
	}
	ran := false
	for _, e := range all {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran = true
		rep, err := e.run(opts)
		if err != nil {
			fatalf("%s: %v", e.name, err)
		}
		fmt.Println(rep.Render())
	}
	if !ran {
		fatalf("unknown experiment %q", *exp)
	}
}

// runObs executes the observability experiment: run the selected TPC-H
// queries on one system, print the estimate-vs-actual report, and write
// the -metrics / -trace artifacts.
func runObs(opts harness.Options, system, queryList, metricsOut, traceOut string) {
	var sys harness.System
	switch strings.ToLower(system) {
	case "ic":
		sys = harness.IC
	case "ic+", "icplus":
		sys = harness.ICPlus
	case "ic+m", "icplusm":
		sys = harness.ICPM
	default:
		fatalf("unknown system %q", system)
	}
	var ids []int
	if queryList != "" {
		for _, s := range strings.Split(queryList, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatalf("bad -queries value %q: %v", s, err)
			}
			ids = append(ids, id)
		}
	}
	sf := opts.SFs[0]
	sites := opts.Sites[0]
	mf, traces, err := harness.CollectMetrics(opts.Env, sys, sites, sf, ids)
	if err != nil {
		fatalf("obs: %v", err)
	}
	ops := 0
	for _, q := range mf.Queries {
		fmt.Printf("%s: modeled=%.4fs rows=%d instances=%d retries=%d spans=%d digest=%s\n",
			q.Label, q.ModeledSecs, q.Rows, q.Instances, q.Retries, q.Spans, q.PlanDigest)
		for _, op := range q.Operators {
			fmt.Printf("  frag%d %-40s est=%-10.0f act=%-10d qerr=%.1fx\n",
				op.Frag, op.Op, op.EstRows, op.ActRows, op.QError)
			ops++
		}
	}
	if metricsOut != "" {
		data, err := json.MarshalIndent(mf, "", "  ")
		if err != nil {
			fatalf("obs: marshal metrics: %v", err)
		}
		if err := os.WriteFile(metricsOut, data, 0o644); err != nil {
			fatalf("obs: %v", err)
		}
		fmt.Fprintf(os.Stderr, "benchrunner: wrote metrics to %s\n", metricsOut)
	}
	if traceOut != "" {
		data, err := obs.ChromeTrace(traces)
		if err != nil {
			fatalf("obs: render trace: %v", err)
		}
		if err := os.WriteFile(traceOut, data, 0o644); err != nil {
			fatalf("obs: %v", err)
		}
		fmt.Fprintf(os.Stderr, "benchrunner: wrote trace to %s\n", traceOut)
	}
	if ops == 0 {
		fatalf("obs: estimate-vs-actual report is empty")
	}
}

// runFilters executes the runtime join-filter smoke check: each query
// runs with filters off and on against identically loaded engines, the
// two result sets must match byte for byte, and Q3 (always included)
// must ship fewer bytes with filters on.
func runFilters(opts harness.Options, queryList string) {
	ids := []int{3, 5, 10}
	if queryList != "" {
		ids = nil
		for _, s := range strings.Split(queryList, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatalf("bad -queries value %q: %v", s, err)
			}
			ids = append(ids, id)
		}
	}
	sf := opts.SFs[0]
	sites := opts.Sites[0]
	env := opts.Env
	env.Filters = false
	off, err := env.Engine(harness.TPCH, harness.ICPlus, sites, sf)
	if err != nil {
		fatalf("filters: %v", err)
	}
	env.Filters = true
	on, err := env.Engine(harness.TPCH, harness.ICPlus, sites, sf)
	if err != nil {
		fatalf("filters: %v", err)
	}
	fmt.Printf("runtime join-filter smoke: IC+ sf=%g sites=%d\n", sf, sites)
	fmt.Printf("%-5s %8s %14s %14s %12s %12s %8s %8s\n",
		"query", "rows", "bytes_off", "bytes_on", "modeled_off", "modeled_on", "filters", "pruned")
	sk := &smoke{name: "filters"}
	for _, id := range ids {
		q := tpch.QueryByID(id)
		if q == nil {
			fatalf("filters: unknown TPC-H query %d", id)
		}
		base, err := off.Query(q.SQL)
		if err != nil {
			fatalf("filters: Q%d off: %v", id, err)
		}
		res, err := on.Query(q.SQL)
		if err != nil {
			fatalf("filters: Q%d on: %v", id, err)
		}
		fmt.Printf("Q%-4d %8d %14.0f %14.0f %12v %12v %8d %8d\n",
			id, len(res.Rows), base.Stats.BytesShipped, res.Stats.BytesShipped,
			base.Modeled.Round(time.Microsecond), res.Modeled.Round(time.Microsecond),
			res.Stats.FiltersBuilt, res.Stats.RowsPruned)
		if rowsText(base.Rows) != rowsText(res.Rows) {
			sk.failf("Q%d results diverge with filters on (%d vs %d rows)",
				id, len(base.Rows), len(res.Rows))
		}
		if id == 3 && res.Stats.BytesShipped >= base.Stats.BytesShipped {
			sk.failf("Q3 shipped bytes did not drop (%.0f -> %.0f)",
				base.Stats.BytesShipped, res.Stats.BytesShipped)
		}
	}
	sk.exit()
}

// runOverload is the resource-governance smoke check (DESIGN.md §14). It
// drives three phases and exits non-zero on any violation:
//
//	A (shed): `clients` goroutines race TPC-H queries into an engine that
//	  admits `admission` at a time over a memory pool sized for about two
//	  queries, with a short admission timeout. Every rejection must be
//	  ErrOverloaded, at least one query must get through, and every
//	  admitted result must be byte-identical to the ungoverned run. No
//	  query may crash or hang.
//	B (queue): same offered load with a generous admission timeout — every
//	  query must queue, admit and return identical rows.
//	C (hedge): one site slowed 8x with a backup replica: hedging must cut
//	  the modeled makespan versus waiting the straggler out, win at least
//	  one race, and leave the rows byte-identical.
func runOverload(opts harness.Options, admission, clients int, maxmem, querymem int64, hedge float64, metricsOut string) {
	sf := opts.SFs[0]
	sites := opts.Sites[0]
	ids := []int{1, 3}

	x := expEnv{name: "overload", sys: harness.ICPlus, sites: sites, sf: sf, par: opts.Env.Parallelism}
	open := x.open

	// Reference run: an effectively ungoverned engine (the huge per-query
	// budget only turns memory accounting on) provides the expected rows
	// and the per-query peaks used to size the shared pool.
	ref := open(func(cfg *gignite.Config) { cfg.QueryMemLimitBytes = 1 << 40 })
	want := make(map[int]string)
	var maxPeak int64
	for _, id := range ids {
		res, err := ref.Query(tpch.QueryByID(id).SQL)
		if err != nil {
			fatalf("overload: reference Q%d: %v", id, err)
		}
		want[id] = rowsText(res.Rows)
		if res.Stats.MemPeakBytes > maxPeak {
			maxPeak = res.Stats.MemPeakBytes
		}
	}
	pool := maxmem
	if pool == 0 {
		// Room for about two in-flight queries' estimated operator state.
		pool = 2*maxPeak + 1<<20
	}
	fmt.Printf("overload smoke: IC+ sf=%g sites=%d admission=%d clients=%d pool=%d bytes (max query peak %d)\n",
		sf, sites, admission, clients, pool, maxPeak)

	// offered load: client i runs one TPC-H query against e; returns are
	// collected so crashes surface as test failure, not a lost goroutine.
	race := func(e *gignite.Engine) (succ, shed int, errs []error) {
		type outcome struct {
			id   int
			rows string
			err  error
		}
		out := make(chan outcome, clients)
		for i := 0; i < clients; i++ {
			go func(i int) {
				id := ids[i%len(ids)]
				res, err := e.Query(tpch.QueryByID(id).SQL)
				if err != nil {
					out <- outcome{id: id, err: err}
					return
				}
				out <- outcome{id: id, rows: rowsText(res.Rows)}
			}(i)
		}
		for i := 0; i < clients; i++ {
			o := <-out
			switch {
			case o.err == nil:
				succ++
				if o.rows != want[o.id] {
					errs = append(errs, fmt.Errorf("admitted Q%d rows differ from the ungoverned run", o.id))
				}
			case errors.Is(o.err, gignite.ErrOverloaded):
				shed++
			default:
				errs = append(errs, fmt.Errorf("Q%d failed outside the shed taxonomy: %w", o.id, o.err))
			}
		}
		return succ, shed, errs
	}

	sk := &smoke{name: "overload"}
	report := func(phase string, errs []error) {
		for _, err := range errs {
			sk.failf("phase %s: %v", phase, err)
		}
	}

	// Phase A: short admission timeout — excess load sheds cleanly.
	govA := open(func(cfg *gignite.Config) {
		cfg.MaxConcurrentQueries = admission
		cfg.MemoryBudgetBytes = pool
		cfg.QueryMemLimitBytes = querymem
		cfg.AdmissionTimeout = 50 * time.Millisecond
	})
	succ, shed, errs := race(govA)
	report("A", errs)
	if succ == 0 {
		sk.failf("phase A admitted nothing")
	}
	fmt.Printf("phase A (shed):  %d/%d admitted, %d shed with ErrOverloaded\n", succ, clients, shed)

	// Phase B: generous timeout — the queue drains and everyone succeeds.
	govB := open(func(cfg *gignite.Config) {
		cfg.MaxConcurrentQueries = admission
		cfg.MemoryBudgetBytes = pool
		cfg.QueryMemLimitBytes = querymem
		cfg.AdmissionTimeout = 60 * time.Second
	})
	succ, shed, errs = race(govB)
	report("B", errs)
	if succ != clients {
		sk.failf("phase B: %d/%d admitted (%d shed); all must queue and succeed",
			succ, clients, shed)
	}
	fmt.Printf("phase B (queue): %d/%d admitted through the FIFO queue\n", succ, clients)

	// Phase C: straggler hedging on the modeled clock.
	slowPlan, err := gignite.ParseFaults("slow=1x8")
	if err != nil {
		fatalf("overload: %v", err)
	}
	waitOut := open(func(cfg *gignite.Config) {
		cfg.Backups = 1
		cfg.Faults = slowPlan
	})
	hedged := open(func(cfg *gignite.Config) {
		cfg.Backups = 1
		cfg.Faults = slowPlan
		cfg.HedgeAfter = hedge
	})
	var modeledBase, modeledHedge time.Duration
	hedgesWon := 0
	for _, id := range ids {
		base, err := waitOut.Query(tpch.QueryByID(id).SQL)
		if err != nil {
			fatalf("overload: phase C baseline Q%d: %v", id, err)
		}
		res, err := hedged.Query(tpch.QueryByID(id).SQL)
		if err != nil {
			fatalf("overload: phase C hedged Q%d: %v", id, err)
		}
		if rowsText(res.Rows) != rowsText(base.Rows) {
			sk.failf("phase C: Q%d rows differ with hedging on", id)
		}
		modeledBase += base.Modeled
		modeledHedge += res.Modeled
		hedgesWon += res.Stats.HedgesWon
	}
	if hedgesWon < 1 {
		sk.failf("phase C: no hedge won its race")
	}
	if modeledHedge >= modeledBase {
		sk.failf("phase C: hedging did not cut the modeled makespan (%v vs %v)",
			modeledHedge, modeledBase)
	}
	fmt.Printf("phase C (hedge): modeled %v -> %v, %d hedge race(s) won\n",
		modeledBase.Round(time.Microsecond), modeledHedge.Round(time.Microsecond), hedgesWon)

	if metricsOut != "" {
		artifact := map[string]interface{}{
			"pool_bytes":       pool,
			"max_query_peak":   maxPeak,
			"governed_queue":   govB.Metrics(),
			"governed_shed":    govA.Metrics(),
			"hedged":           hedged.Metrics(),
			"modeled_baseline": modeledBase.Seconds(),
			"modeled_hedged":   modeledHedge.Seconds(),
		}
		data, err := json.MarshalIndent(artifact, "", "  ")
		if err != nil {
			fatalf("overload: marshal metrics: %v", err)
		}
		if err := os.WriteFile(metricsOut, data, 0o644); err != nil {
			fatalf("overload: %v", err)
		}
		fmt.Fprintf(os.Stderr, "benchrunner: wrote metrics to %s\n", metricsOut)
	}
	sk.exit()
}

// smoke owns the exit-code convention shared by the CI smoke experiments
// (filters, overload, plancache, benchgate): every violation is reported
// to stderr prefixed with the experiment name, the experiment keeps
// running so one invocation surfaces all failures, and exit() terminates
// the process non-zero when anything was reported.
type smoke struct {
	name   string
	failed bool
}

func (s *smoke) failf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchrunner: %s: %s\n", s.name, fmt.Sprintf(format, args...))
	s.failed = true
}

// exit must be the experiment's last call.
func (s *smoke) exit() {
	if s.failed {
		os.Exit(1)
	}
}

// rowsText renders a result set (row order included) for comparison.
func rowsText(rows []gignite.Row) string {
	var sb strings.Builder
	for _, r := range rows {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchrunner: "+format+"\n", args...)
	os.Exit(1)
}
