package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"gignite/internal/harness"
	"gignite/internal/tpch"
)

// planCacheHits is the hot-run count of the plancache smoke: enough to
// amortize a stray scheduler hiccup out of the mean without slowing CI.
const planCacheHits = 20

// runPlanCache is the plan-cache smoke check (DESIGN.md §15). For each
// query it runs a cache-off engine for reference rows, one cold run and
// planCacheHits hot runs on a cache-enabled engine, and requires:
//
//   - every hot run reports PlanningSkipped,
//   - the mean hot plan-acquisition time is ≤ 10% of the cold planning
//     time (the cache must eliminate ≥ 90% of planning work), and
//   - rows are byte-identical across cache-off, cold and every hot run.
func runPlanCache(opts harness.Options, queryList, metricsOut string) {
	sk := &smoke{name: "plancache"}
	ids := []int{1, 3, 10}
	if queryList != "" {
		ids = nil
		for _, s := range strings.Split(queryList, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatalf("bad -queries value %q: %v", s, err)
			}
			ids = append(ids, id)
		}
	}
	sf := opts.SFs[0]
	sites := opts.Sites[0]
	env := opts.Env
	env.PlanCache = 0
	off, err := env.Engine(harness.TPCH, harness.ICPlus, sites, sf)
	if err != nil {
		fatalf("plancache: %v", err)
	}
	env.PlanCache = 64
	on, err := env.Engine(harness.TPCH, harness.ICPlus, sites, sf)
	if err != nil {
		fatalf("plancache: %v", err)
	}

	fmt.Printf("plan cache smoke: IC+ sf=%g sites=%d, %d hot runs per query\n", sf, sites, planCacheHits)
	fmt.Printf("%-5s %8s %14s %14s %9s\n", "query", "rows", "cold_plan", "mean_hot_plan", "speedup")
	type gateQuery struct {
		ColdPlanNanos   int64   `json:"cold_plan_nanos"`
		MeanHotNanos    int64   `json:"mean_hot_plan_nanos"`
		Speedup         float64 `json:"speedup"`
		Rows            int     `json:"rows"`
		PlanningSkipped bool    `json:"planning_skipped"`
	}
	artifact := map[string]gateQuery{}
	for _, id := range ids {
		q := tpch.QueryByID(id)
		if q == nil {
			fatalf("plancache: unknown TPC-H query %d", id)
		}
		base, err := off.Query(q.SQL)
		if err != nil {
			fatalf("plancache: Q%d (cache off): %v", id, err)
		}
		want := rowsText(base.Rows)
		cold, err := on.Query(q.SQL)
		if err != nil {
			fatalf("plancache: Q%d (cold): %v", id, err)
		}
		if cold.Stats.PlanningSkipped {
			sk.failf("Q%d: cold run claims planning was skipped (cache warmed unexpectedly)", id)
		}
		if rowsText(cold.Rows) != want {
			sk.failf("Q%d: cold rows differ from the cache-off run", id)
		}
		var hotTotal int64
		allSkipped := true
		for i := 0; i < planCacheHits; i++ {
			hot, err := on.Query(q.SQL)
			if err != nil {
				fatalf("plancache: Q%d (hot %d): %v", id, i, err)
			}
			hotTotal += hot.Stats.PlanNanos
			if !hot.Stats.PlanningSkipped {
				allSkipped = false
			}
			if rowsText(hot.Rows) != want {
				sk.failf("Q%d: hot run %d rows differ from the cache-off run", id, i)
			}
		}
		meanHot := hotTotal / planCacheHits
		if !allSkipped {
			sk.failf("Q%d: not every hot run skipped planning", id)
		}
		if meanHot*10 > cold.Stats.PlanNanos {
			sk.failf("Q%d: hot planning %v is over 10%% of cold %v; the cache is not skipping enough work",
				id, time.Duration(meanHot), time.Duration(cold.Stats.PlanNanos))
		}
		speedup := float64(cold.Stats.PlanNanos) / float64(max64(meanHot, 1))
		fmt.Printf("Q%-4d %8d %14v %14v %8.0fx\n",
			id, len(base.Rows), time.Duration(cold.Stats.PlanNanos), time.Duration(meanHot), speedup)
		artifact[fmt.Sprintf("Q%d", id)] = gateQuery{
			ColdPlanNanos: cold.Stats.PlanNanos, MeanHotNanos: meanHot,
			Speedup: speedup, Rows: len(base.Rows), PlanningSkipped: allSkipped,
		}
	}
	if s, enabled := on.PlanCacheStats(); enabled {
		fmt.Printf("cache: %d/%d plans, %d hits, %d misses, %d evictions\n",
			s.Size, s.Capacity, s.Hits, s.Misses, s.Evictions)
	}
	if metricsOut != "" {
		writeJSON(metricsOut, artifact)
	}
	sk.exit()
}

// gateBaseline is the committed BENCH_gate.json document the regression
// gate compares against. The measured signals — modeled time and shipped
// bytes — come from the simnet cost clock and are deterministic across
// hosts and -par settings, so the tolerance guards real plan or executor
// regressions, not machine noise.
type gateBaseline struct {
	Schema      string `json:"schema"`
	Description string `json:"description"`
	Config      struct {
		System  string  `json:"system"`
		SF      float64 `json:"sf"`
		Sites   int     `json:"sites"`
		Queries []int   `json:"queries"`
	} `json:"config"`
	TolerancePct float64              `json:"tolerance_pct"`
	Queries      map[string]gateEntry `json:"queries"`
}

type gateEntry struct {
	ModeledMs    float64 `json:"modeled_ms"`
	BytesShipped float64 `json:"bytes_shipped"`
}

// gateSchema versions the baseline file format.
const gateSchema = "gignite.benchgate/v1"

// runBenchGate is the benchmark-regression gate: measure the baseline
// file's query set at its pinned configuration and fail when modeled time
// or shipped bytes regress beyond the baseline's tolerance. Improvements
// beyond the tolerance are reported (refresh the baseline with
// -update-baseline) but do not fail the gate.
func runBenchGate(opts harness.Options, baselinePath, metricsOut string, update bool) {
	sk := &smoke{name: "benchgate"}
	base := &gateBaseline{}
	data, err := os.ReadFile(baselinePath)
	switch {
	case err == nil:
		if err := json.Unmarshal(data, base); err != nil {
			fatalf("benchgate: parse %s: %v", baselinePath, err)
		}
		if base.Schema != gateSchema {
			fatalf("benchgate: %s has schema %q, want %q", baselinePath, base.Schema, gateSchema)
		}
	case os.IsNotExist(err) && update:
		// Seeding a fresh baseline: pin the default configuration.
		base.Schema = gateSchema
		base.Description = "Benchmark-regression gate baseline: deterministic modeled times and shipped bytes for the pinned TPC-H query set on the IC+ configuration. Regenerate with `make benchgate-update` after intentional performance changes and commit the diff."
		base.Config.System = "IC+"
		base.Config.SF = 0.05
		base.Config.Sites = 4
		base.Config.Queries = []int{1, 3, 5, 10}
		base.TolerancePct = 10
	default:
		fatalf("benchgate: %v (run with -update-baseline to seed it)", err)
	}
	if base.TolerancePct <= 0 {
		base.TolerancePct = 10
	}

	env := opts.Env
	e, err := env.Engine(harness.TPCH, harness.ICPlus, base.Config.Sites, base.Config.SF)
	if err != nil {
		fatalf("benchgate: %v", err)
	}
	fmt.Printf("benchmark-regression gate: %s sf=%g sites=%d tolerance=±%g%%\n",
		base.Config.System, base.Config.SF, base.Config.Sites, base.TolerancePct)
	fmt.Printf("%-5s %14s %14s %8s %14s %14s %8s\n",
		"query", "modeled_base", "modeled_now", "delta", "bytes_base", "bytes_now", "delta")

	measured := make(map[string]gateEntry, len(base.Config.Queries))
	for _, id := range base.Config.Queries {
		q := tpch.QueryByID(id)
		if q == nil {
			fatalf("benchgate: unknown TPC-H query %d", id)
		}
		res, err := e.Query(q.SQL)
		if err != nil {
			fatalf("benchgate: Q%d: %v", id, err)
		}
		label := fmt.Sprintf("Q%d", id)
		got := gateEntry{
			ModeledMs:    float64(res.Modeled.Microseconds()) / 1000,
			BytesShipped: res.Stats.BytesShipped,
		}
		measured[label] = got
		want, ok := base.Queries[label]
		if !ok {
			if !update {
				sk.failf("%s missing from baseline %s", label, baselinePath)
			}
			fmt.Printf("%-5s %14s %14.2f %8s %14s %14.0f %8s\n", label, "-", got.ModeledMs, "-", "-", got.BytesShipped, "-")
			continue
		}
		dm := pctDelta(got.ModeledMs, want.ModeledMs)
		db := pctDelta(got.BytesShipped, want.BytesShipped)
		fmt.Printf("%-5s %14.2f %14.2f %+7.1f%% %14.0f %14.0f %+7.1f%%\n",
			label, want.ModeledMs, got.ModeledMs, dm, want.BytesShipped, got.BytesShipped, db)
		if update {
			continue
		}
		if dm > base.TolerancePct {
			sk.failf("%s modeled time regressed %.1f%% (%.2fms -> %.2fms, tolerance %g%%)",
				label, dm, want.ModeledMs, got.ModeledMs, base.TolerancePct)
		}
		if db > base.TolerancePct {
			sk.failf("%s shipped bytes regressed %.1f%% (%.0f -> %.0f, tolerance %g%%)",
				label, db, want.BytesShipped, got.BytesShipped, base.TolerancePct)
		}
		if dm < -base.TolerancePct || db < -base.TolerancePct {
			fmt.Fprintf(os.Stderr, "benchrunner: benchgate: note: %s improved beyond tolerance; refresh the baseline with -update-baseline\n", label)
		}
	}

	if update {
		base.Queries = measured
		env := gateEnvironment()
		base.Description = strings.TrimSpace(base.Description)
		out, err := json.MarshalIndent(struct {
			*gateBaseline
			Environment map[string]string `json:"environment"`
		}{base, env}, "", "  ")
		if err != nil {
			fatalf("benchgate: marshal baseline: %v", err)
		}
		if err := os.WriteFile(baselinePath, append(out, '\n'), 0o644); err != nil {
			fatalf("benchgate: %v", err)
		}
		fmt.Fprintf(os.Stderr, "benchrunner: wrote baseline to %s\n", baselinePath)
	}
	if metricsOut != "" {
		writeJSON(metricsOut, map[string]interface{}{
			"baseline":      base.Queries,
			"measured":      measured,
			"tolerance_pct": base.TolerancePct,
		})
	}
	sk.exit()
}

// pctDelta returns (got-want)/want as a percentage; positive = regression.
func pctDelta(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 100
	}
	return 100 * (got - want) / want
}

func gateEnvironment() map[string]string {
	return map[string]string{
		"note": "modeled times and shipped bytes are simnet cost-clock values: deterministic across hosts, goroutine counts and -par settings",
	}
}

func writeJSON(path string, v interface{}) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatalf("marshal %s: %v", path, err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "benchrunner: wrote %s\n", path)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
