package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"gignite"
	"gignite/internal/harness"
	"gignite/internal/tpch"
)

// adaptiveQuery is one query of the adaptive smoke's default set:
// Q5/Q9-shaped multiway join aggregates over TPC-H data, chosen so the
// misestimation damages exactly the decisions the §17 rewrites can
// repair mid-query (build sides and exchange routing), not the join
// order itself.
type adaptiveQuery struct {
	name string
	sql  string
}

var adaptiveQueries = []adaptiveQuery{
	{"Q5-shape", `SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation
WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey AND s_nationkey = n_nationkey
GROUP BY n_name ORDER BY revenue DESC`},
	{"Q5-supplier", `SELECT s_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM lineitem, orders, supplier
WHERE l_orderkey = o_orderkey AND l_suppkey = s_suppkey AND o_orderdate >= DATE '1994-01-01'
GROUP BY s_name ORDER BY revenue DESC`},
	{"Q9-shape", `SELECT n_name, SUM(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) AS profit
FROM part, supplier, lineitem, partsupp, nation
WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey AND ps_partkey = l_partkey
  AND p_partkey = l_partkey AND s_nationkey = n_nationkey
GROUP BY n_name ORDER BY profit DESC`},
}

// runAdaptive is the adaptive-execution smoke check (DESIGN.md §17). It
// drives two phases and exits non-zero on any violation:
//
//	A (recovery): three identically loaded engines run Q5/Q9-shaped join
//	  aggregates: an oracle with correct statistics and static plans, a
//	  static engine whose join estimates are multiplied by `mis`
//	  (default 10x), and an adaptive engine under the same
//	  misestimation. The adaptive run must be byte-identical to the
//	  static run it rewrites, its modeled time must stay within 115% of
//	  the oracle's, and at least one rewrite must fire across the set.
//	B (identity): under the same misestimated statistics, the adaptive
//	  run must be byte-identical to the static one at host parallelism
//	  1, 2 and 8 and under crash / slow / sendfail fault plans (with one
//	  backup replica so crashed partitions recover). Byte identity is
//	  defined against the plan the rewrites started from — different
//	  statistics may legitimately pick a different plan whose float
//	  aggregation order differs in the last bit.
//
// -queries replaces the shaped default set with real TPC-H queries by
// id (exploration mode; large misestimation can then legitimately
// change the join order itself, which no in-place rewrite recovers).
func runAdaptive(opts harness.Options, mis float64, queryList, metricsOut string) {
	if mis == 0 || mis == 1 {
		mis = 10
	}
	set := adaptiveQueries
	if queryList != "" {
		set = nil
		for _, s := range strings.Split(queryList, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatalf("bad -queries value %q: %v", s, err)
			}
			q := tpch.QueryByID(id)
			if q == nil {
				fatalf("adaptive: unknown TPC-H query %d", id)
			}
			set = append(set, adaptiveQuery{name: fmt.Sprintf("Q%d", id), sql: q.SQL})
		}
	}
	sf := opts.SFs[0]
	sites := opts.Sites[0]
	sk := &smoke{name: "adaptive"}
	x := expEnv{name: "adaptive", sys: harness.ICPlus, sites: sites, sf: sf, par: opts.Env.Parallelism}

	oracle := x.open(nil)
	staticMis := x.open(func(cfg *gignite.Config) { cfg.StatsMisestimate = mis })
	adaptMis := x.open(func(cfg *gignite.Config) {
		cfg.StatsMisestimate = mis
		cfg.AdaptiveExec = true
	})

	fmt.Printf("adaptive smoke: IC+ sf=%g sites=%d misestimate=%gx\n", sf, sites, mis)
	fmt.Printf("%-12s %8s %14s %14s %14s %8s %9s %7s\n",
		"query", "rows", "oracle", "static-mis", "adaptive-mis", "ratio", "replans", "switch")

	type row struct {
		Query    string  `json:"query"`
		Oracle   float64 `json:"oracle_modeled_secs"`
		Static   float64 `json:"static_mis_modeled_secs"`
		Adaptive float64 `json:"adaptive_mis_modeled_secs"`
		Ratio    float64 `json:"adaptive_over_oracle"`
		Replans  int     `json:"replans"`
		Switches int     `json:"switches"`
	}
	var artifact []row
	staticRows := make(map[string]string)
	totalSwitches := 0
	for _, q := range set {
		base, err := oracle.Query(q.sql)
		if err != nil {
			fatalf("adaptive: %s oracle: %v", q.name, err)
		}
		st, err := staticMis.Query(q.sql)
		if err != nil {
			fatalf("adaptive: %s static-mis: %v", q.name, err)
		}
		ad, err := adaptMis.Query(q.sql)
		if err != nil {
			fatalf("adaptive: %s adaptive-mis: %v", q.name, err)
		}
		staticRows[q.name] = rowsText(st.Rows)
		ratio := ad.Modeled.Seconds() / base.Modeled.Seconds()
		totalSwitches += ad.Stats.AdaptiveSwitches
		fmt.Printf("%-12s %8d %14v %14v %14v %7.2fx %9d %7d\n",
			q.name, len(ad.Rows),
			base.Modeled.Round(time.Microsecond), st.Modeled.Round(time.Microsecond),
			ad.Modeled.Round(time.Microsecond), ratio,
			ad.Stats.AdaptiveReplans, ad.Stats.AdaptiveSwitches)
		if len(st.Rows) != len(base.Rows) {
			sk.failf("%s: misestimated static row count differs from the oracle (%d vs %d)",
				q.name, len(st.Rows), len(base.Rows))
		}
		if rowsText(ad.Rows) != rowsText(st.Rows) {
			sk.failf("%s: adaptive rows differ from the static plan", q.name)
		}
		if ratio > 1.15 {
			sk.failf("%s: adaptive modeled time is %.2fx the oracle (limit 1.15x)", q.name, ratio)
		}
		artifact = append(artifact, row{
			Query: q.name, Oracle: base.Modeled.Seconds(), Static: st.Modeled.Seconds(),
			Adaptive: ad.Modeled.Seconds(), Ratio: ratio,
			Replans: ad.Stats.AdaptiveReplans, Switches: ad.Stats.AdaptiveSwitches,
		})
	}
	if totalSwitches == 0 {
		sk.failf("no adaptive rewrite fired across the query set")
	}

	// Phase B: byte identity across host parallelism and fault plans. The
	// misestimation stays on so the adaptive rewrites actually fire.
	idQ := set[0]
	want := staticRows[idQ.name]
	for _, par := range []int{1, 2, 8} {
		for _, spec := range []string{"", "seed=7;crash=2@4", "seed=7;slow=1x4", "seed=7;sendfail=0.05"} {
			fp, err := gignite.ParseFaults(spec)
			if err != nil {
				fatalf("adaptive: %v", err)
			}
			y := x
			y.par = par
			e := y.open(func(cfg *gignite.Config) {
				cfg.Backups = 1
				cfg.Faults = fp
				cfg.StatsMisestimate = mis
				cfg.AdaptiveExec = true
			})
			res, err := e.Query(idQ.sql)
			if err != nil {
				fatalf("adaptive: identity %s par=%d faults=%q: %v", idQ.name, par, spec, err)
			}
			if rowsText(res.Rows) != want {
				sk.failf("identity: %s rows diverge at par=%d faults=%q", idQ.name, par, spec)
			}
		}
	}
	fmt.Printf("identity: %s byte-identical across par={1,2,8} x faults={none,crash,slow,sendfail}\n", idQ.name)

	if metricsOut != "" {
		data, err := json.MarshalIndent(artifact, "", "  ")
		if err != nil {
			fatalf("adaptive: marshal metrics: %v", err)
		}
		if err := os.WriteFile(metricsOut, data, 0o644); err != nil {
			fatalf("adaptive: %v", err)
		}
		fmt.Fprintf(os.Stderr, "benchrunner: wrote metrics to %s\n", metricsOut)
	}
	sk.exit()
}
