// Command sweep runs every query of a benchmark on all three system
// variants side by side and prints modeled response times plus speedup
// ratios — the quick-look diagnostic behind the Figure 7/8/11 experiments.
//
// Usage:
//
//	sweep [-bench tpch|ssb] [-sf 0.01] [-sites 4]
package main

import (
	"flag"
	"fmt"
	"time"

	"gignite"
	"gignite/internal/harness"
	"gignite/internal/ssb"
	"gignite/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.002, "scale factor")
	bench := flag.String("bench", "tpch", "tpch or ssb")
	sites := flag.Int("sites", 4, "sites")
	flag.Parse()

	type qspec struct{ label, sql string }
	var queries []qspec
	engines := map[harness.System]*gignite.Engine{}
	for _, sys := range harness.Systems() {
		e := gignite.New(harness.ConfigFor(sys, *sites, *sf))
		var err error
		if *bench == "ssb" {
			err = ssb.Setup(e, *sf)
		} else {
			err = tpch.Setup(e, *sf)
		}
		if err != nil {
			panic(err)
		}
		engines[sys] = e
	}
	if *bench == "ssb" {
		for _, q := range ssb.Queries() {
			queries = append(queries, qspec{q.ID, q.SQL})
		}
	} else {
		for _, q := range tpch.Queries() {
			if q.RequiresViews {
				continue
			}
			queries = append(queries, qspec{fmt.Sprintf("Q%d", q.ID), q.SQL})
		}
	}
	fmt.Printf("%-6s %12s %12s %12s %10s %10s %10s\n",
		"query", "IC", "IC+", "IC+M", "IC+/IC", "IC+M/IC", "IC+M/IC+")
	for _, q := range queries {
		times := map[harness.System]time.Duration{}
		errs := map[harness.System]error{}
		for _, sys := range harness.Systems() {
			res, err := engines[sys].Query(q.sql)
			if err != nil {
				errs[sys] = err
				continue
			}
			times[sys] = res.Modeled
		}
		cell := func(sys harness.System) string {
			if errs[sys] != nil {
				return "FAIL"
			}
			return fmt.Sprintf("%.2fms", float64(times[sys])/1e6)
		}
		ratio := func(a, b harness.System) string {
			if errs[a] != nil || errs[b] != nil || times[b] == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2fx", float64(times[a])/float64(times[b]))
		}
		fmt.Printf("%-6s %12s %12s %12s %10s %10s %10s\n",
			q.label, cell(harness.IC), cell(harness.ICPlus), cell(harness.ICPM),
			ratio(harness.IC, harness.ICPlus), ratio(harness.IC, harness.ICPM),
			ratio(harness.ICPlus, harness.ICPM))
	}
}
