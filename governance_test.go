package gignite

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"gignite/internal/types"
)

// governedConfig is ICPlus(4) with the admission gate enabled: one query
// at a time, tiny queue wait so shed tests settle fast.
func governedConfig() Config {
	cfg := ICPlus(4)
	cfg.MaxConcurrentQueries = 1
	cfg.AdmissionTimeout = 25 * time.Millisecond
	return cfg
}

// TestAdmissionShedsWithErrOverloaded holds the engine's only admission
// slot and checks the next query is shed with the typed sentinel after
// AdmissionTimeout, with the shed counter recording it.
func TestAdmissionShedsWithErrOverloaded(t *testing.T) {
	e := setupEmployees(t, governedConfig())

	lease, err := e.gov.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire slot: %v", err)
	}
	defer lease.Close()

	_, err = e.Query(`SELECT COUNT(*) FROM emp`)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expected ErrOverloaded, got %v", err)
	}
	snap := e.Metrics()
	if snap.Counters["queries_shed_total"] < 1 {
		t.Errorf("queries_shed_total = %v, want >= 1", snap.Counters["queries_shed_total"])
	}
	if snap.Gauges["queries_queued"] != 0 {
		t.Errorf("queries_queued = %v after shed, want 0", snap.Gauges["queries_queued"])
	}
}

// TestAdmissionQueueAdmitsWhenSlotFrees parks a query in the admission
// queue and checks it runs to a correct result once the slot frees.
func TestAdmissionQueueAdmitsWhenSlotFrees(t *testing.T) {
	cfg := governedConfig()
	cfg.AdmissionTimeout = 10 * time.Second
	e := setupEmployees(t, cfg)

	lease, err := e.gov.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire slot: %v", err)
	}
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := e.Query(`SELECT COUNT(*) FROM emp WHERE dept_id = 1`)
		done <- outcome{res, err}
	}()
	// Wait until the query is actually parked in the queue, then free
	// the slot and let it through.
	deadline := time.Now().Add(5 * time.Second)
	for e.Metrics().Gauges["queries_queued"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never reached the admission queue")
		}
		time.Sleep(time.Millisecond)
	}
	lease.Close()
	out := <-done
	if out.err != nil {
		t.Fatalf("queued query failed: %v", out.err)
	}
	if len(out.res.Rows) != 1 || out.res.Rows[0][0].String() != "25" {
		t.Fatalf("queued query rows = %v", out.res.Rows)
	}
}

// TestAdmissionAbandonedWaiterReleasesSlot cancels a queued query's
// context, checks it reports context.Canceled (not the timeout sentinel),
// that the slot is handed to the next waiter rather than leaking, and
// that no goroutine is left behind.
func TestAdmissionAbandonedWaiterReleasesSlot(t *testing.T) {
	cfg := governedConfig()
	cfg.AdmissionTimeout = 10 * time.Second
	e := setupEmployees(t, cfg)

	before := runtime.NumGoroutine()

	lease, err := e.gov.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire slot: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.QueryContext(ctx, `SELECT COUNT(*) FROM emp`)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for e.Metrics().Gauges["queries_queued"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never reached the admission queue")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	err = <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned query error = %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrQueryTimeout) {
		t.Fatalf("user cancellation must not map to ErrQueryTimeout: %v", err)
	}

	// The abandoned waiter must have left the queue; releasing the held
	// slot must let a fresh query straight through.
	lease.Close()
	if _, err := e.Query(`SELECT COUNT(*) FROM dept`); err != nil {
		t.Fatalf("query after abandonment: %v", err)
	}

	// No goroutine may outlive the abandoned admission wait.
	leakDeadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestQueryMemLimitAbortsOnlyThatQuery runs a sort that blows a tiny
// per-query budget: the query must abort with ErrMemoryExceeded naming
// the operator, while the engine stays healthy for the next query and
// the shared reservation gauge drains back to zero.
func TestQueryMemLimitAbortsOnlyThatQuery(t *testing.T) {
	cfg := ICPlus(4)
	cfg.QueryMemLimitBytes = 1024
	e := setupEmployees(t, cfg)

	_, err := e.Query(`SELECT * FROM sales ORDER BY amount, sale_id`)
	if !errors.Is(err, ErrMemoryExceeded) {
		t.Fatalf("expected ErrMemoryExceeded, got %v", err)
	}
	if !strings.Contains(err.Error(), "exec: ") {
		t.Errorf("memory error does not name the operator: %v", err)
	}

	// Only that query dies: a small query fits the same budget.
	res, err := e.Query(`SELECT COUNT(*) FROM dept`)
	if err != nil {
		t.Fatalf("small query after abort: %v", err)
	}
	if res.Rows[0][0].String() != "4" {
		t.Fatalf("small query rows = %v", res.Rows)
	}
	if got := e.Metrics().Gauges["mem_reserved_bytes"]; got != 0 {
		t.Errorf("mem_reserved_bytes = %v after queries finished, want 0", got)
	}
}

// TestGovernedRowsMatchUngoverned runs a mixed workload on a governed
// engine with generous budgets and checks every result is byte-identical
// to the ungoverned engine, that the queries actually charged memory,
// and that EXPLAIN ANALYZE surfaces the per-operator peaks.
func TestGovernedRowsMatchUngoverned(t *testing.T) {
	plain := setupEmployees(t, ICPlus(4))
	cfg := ICPlus(4)
	cfg.MaxConcurrentQueries = 2
	cfg.MemoryBudgetBytes = 64 << 20
	cfg.QueryMemLimitBytes = 32 << 20
	gov := setupEmployees(t, cfg)

	queries := []string{
		`SELECT dept_id, COUNT(*), SUM(salary) FROM emp GROUP BY dept_id ORDER BY dept_id`,
		`SELECT e.name, s.amount FROM emp e, sales s
			WHERE e.id = s.emp_id AND s.amount > 250 ORDER BY e.name, s.amount`,
		`SELECT * FROM sales ORDER BY amount, sale_id LIMIT 40`,
		`SELECT d.dname, COUNT(*) AS n FROM emp e, dept d
			WHERE e.dept_id = d.dept_id GROUP BY d.dname ORDER BY n DESC, d.dname`,
	}
	charged := false
	for _, q := range queries {
		want, err := plain.Query(q)
		if err != nil {
			t.Fatalf("ungoverned %q: %v", q, err)
		}
		got, err := gov.Query(q)
		if err != nil {
			t.Fatalf("governed %q: %v", q, err)
		}
		sameRows(t, q, want.Rows, got.Rows)
		if got.Stats.MemPeakBytes > 0 {
			charged = true
		}
	}
	if !charged {
		t.Error("no query reported MemPeakBytes > 0 under the governor")
	}

	res, err := gov.Exec(`EXPLAIN ANALYZE SELECT e.name, s.amount FROM emp e, sales s
		WHERE e.id = s.emp_id AND s.amount > 250 ORDER BY e.name, s.amount`)
	if err != nil {
		t.Fatalf("explain analyze: %v", err)
	}
	if !strings.Contains(res.PlanText, "mem=") {
		t.Errorf("EXPLAIN ANALYZE does not render operator memory peaks:\n%s", res.PlanText)
	}
}

// TestDeadlineMapsToErrQueryTimeout checks a context deadline surfaces
// as the typed timeout sentinel while still matching the context error,
// on both a governed and an ungoverned engine.
func TestDeadlineMapsToErrQueryTimeout(t *testing.T) {
	for _, governed := range []bool{false, true} {
		cfg := ICPlus(4)
		cfg.QueryTimeout = time.Nanosecond
		if governed {
			cfg.MaxConcurrentQueries = 4
		}
		e := setupEmployees(t, cfg)
		// setupEmployees already ran DDL/Analyze; only SELECTs get the
		// timeout treatment.
		_, err := e.Query(`SELECT e.name, s.amount FROM emp e, sales s
			WHERE e.id = s.emp_id ORDER BY e.name, s.amount`)
		if !errors.Is(err, ErrQueryTimeout) {
			t.Fatalf("governed=%v: expected ErrQueryTimeout, got %v", governed, err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("governed=%v: deadline error must still match context.DeadlineExceeded: %v", governed, err)
		}
	}
}

// TestHedgingCutsStragglerMakespan runs an aggregation with one site
// slowed 8x and backup replicas available. With hedging on, the modeled
// makespan must drop versus waiting the straggler out, at least one
// hedge must launch and win, results must stay byte-identical at every
// parallelism, and the span ledger must account for every attempt.
func TestHedgingCutsStragglerMakespan(t *testing.T) {
	base := ICPlus(4)
	base.Backups = 1
	var err error
	base.Faults, err = ParseFaults("slow=1x8")
	if err != nil {
		t.Fatal(err)
	}
	hedged := base
	hedged.HedgeAfter = 2

	// The straggler must dominate the modeled makespan for hedging to
	// pay, so use enough rows per site that per-instance work dwarfs the
	// fixed thread overhead.
	loadBig := func(cfg Config) *Engine {
		e := New(cfg)
		mustExec(t, e, `CREATE TABLE big (id BIGINT PRIMARY KEY, grp BIGINT, val DOUBLE)`)
		rows := make([]Row, 20000)
		for i := range rows {
			rows[i] = Row{
				types.NewInt(int64(i)),
				types.NewInt(int64(i % 16)),
				types.NewFloat(float64(i%251) * 1.25),
			}
		}
		if err := e.LoadTable("big", rows); err != nil {
			t.Fatal(err)
		}
		if err := e.Analyze(); err != nil {
			t.Fatal(err)
		}
		return e
	}
	slow := loadBig(base)
	fast := loadBig(hedged)

	const q = `SELECT grp, COUNT(*), SUM(val) FROM big GROUP BY grp ORDER BY grp`
	want, err := slow.Query(q)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if want.Stats.Hedges != 0 {
		t.Fatalf("baseline hedged %d times with HedgeAfter=0", want.Stats.Hedges)
	}

	got, err := fast.Query(q)
	if err != nil {
		t.Fatalf("hedged: %v", err)
	}
	sameRows(t, q, want.Rows, got.Rows)
	if got.Stats.Hedges < 1 || got.Stats.HedgesWon < 1 {
		t.Fatalf("hedges=%d won=%d, want both >= 1", got.Stats.Hedges, got.Stats.HedgesWon)
	}
	if got.Modeled >= want.Modeled {
		t.Errorf("hedging did not cut makespan: %v (hedged) vs %v (baseline)", got.Modeled, want.Modeled)
	}
	if got.Stats.Spans != got.Stats.Instances+got.Stats.Retries+got.Stats.Hedges {
		t.Errorf("span ledger broken: spans=%d instances=%d retries=%d hedges=%d",
			got.Stats.Spans, got.Stats.Instances, got.Stats.Retries, got.Stats.Hedges)
	}

	snap := fast.Metrics()
	if snap.Counters["hedges_launched_total"] < 1 || snap.Counters["hedges_won_total"] < 1 {
		t.Errorf("hedge counters = launch %v / won %v, want both >= 1",
			snap.Counters["hedges_launched_total"], snap.Counters["hedges_won_total"])
	}

	// Hedging must be deterministic: identical rows, modeled time and
	// hedge counts at every worker-pool width.
	for _, workers := range []int{1, 2, 0} {
		fast.SetExecParallelism(workers)
		again, err := fast.Query(q)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		sameRows(t, q, want.Rows, again.Rows)
		if again.Modeled != got.Modeled {
			t.Errorf("workers=%d: modeled %v, want %v", workers, again.Modeled, got.Modeled)
		}
		if again.Stats.Hedges != got.Stats.Hedges || again.Stats.HedgesWon != got.Stats.HedgesWon {
			t.Errorf("workers=%d: hedges=%d/%d, want %d/%d", workers,
				again.Stats.Hedges, again.Stats.HedgesWon, got.Stats.Hedges, got.Stats.HedgesWon)
		}
	}
}
