package gignite

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"gignite/internal/types"
)

// exactRows renders a result byte-for-byte (columns, then rows in result
// order) so cache-on and cache-off executions can be compared exactly.
func exactRows(res *Result) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Columns, "|"))
	sb.WriteByte('\n')
	for _, r := range res.Rows {
		for j, v := range r {
			if j > 0 {
				sb.WriteByte('|')
			}
			sb.WriteString(v.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestPlanCacheByteIdentical runs the cross-check workload on a cached
// and an uncached engine at several host parallelism levels and requires
// byte-identical results and identical modeled times, cold and hot.
func TestPlanCacheByteIdentical(t *testing.T) {
	for _, par := range []int{1, 2, 8} {
		cfgOff := ICPlus(4)
		cfgOff.ExecParallelism = par
		cfgOn := cfgOff
		cfgOn.PlanCacheSize = 64
		off := setupEmployees(t, cfgOff)
		on := setupEmployees(t, cfgOn)
		for _, q := range crossCheckQueries {
			want, err := off.Query(q)
			if err != nil {
				t.Fatalf("par=%d %q (cache off): %v", par, q, err)
			}
			cold, err := on.Query(q)
			if err != nil {
				t.Fatalf("par=%d %q (cold): %v", par, q, err)
			}
			hot, err := on.Query(q)
			if err != nil {
				t.Fatalf("par=%d %q (hot): %v", par, q, err)
			}
			if cold.Stats.PlanningSkipped {
				t.Errorf("par=%d %q: cold run claims planning was skipped", par, q)
			}
			if !hot.Stats.PlanningSkipped {
				t.Errorf("par=%d %q: hot run did not hit the plan cache", par, q)
			}
			wantTxt := exactRows(want)
			for name, got := range map[string]*Result{"cold": cold, "hot": hot} {
				if txt := exactRows(got); txt != wantTxt {
					t.Errorf("par=%d %q: %s rows differ from cache-off:\n%s\nvs\n%s", par, q, name, txt, wantTxt)
				}
				if got.Modeled != want.Modeled {
					t.Errorf("par=%d %q: %s modeled %v != %v", par, q, name, got.Modeled, want.Modeled)
				}
			}
		}
	}
}

// TestPlanCacheUnderFaults checks cached plans compose with deterministic
// fault injection and failover: results stay byte-identical cache on/off.
func TestPlanCacheUnderFaults(t *testing.T) {
	fp, err := ParseFaults("seed=1;crash=2@2;slow=1x2.0")
	if err != nil {
		t.Fatal(err)
	}
	cfgOff := ICPlus(4)
	cfgOff.Backups = 1
	cfgOff.Faults = fp
	cfgOn := cfgOff
	cfgOn.PlanCacheSize = 16
	off := setupEmployees(t, cfgOff)
	on := setupEmployees(t, cfgOn)
	q := `SELECT d.dname, COUNT(*) AS n FROM emp e, dept d WHERE e.dept_id = d.dept_id
	 GROUP BY d.dname ORDER BY n DESC, d.dname`
	want, err := off.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := on.Query(q)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if exactRows(got) != exactRows(want) {
			t.Fatalf("run %d: rows differ under faults", i)
		}
		if i > 0 && !got.Stats.PlanningSkipped {
			t.Fatalf("run %d: expected a plan cache hit", i)
		}
	}
}

// TestPlanCacheWithRuntimeFilters checks cached plans re-derive runtime
// join filters on every execution (filter planning happens post-clone).
func TestPlanCacheWithRuntimeFilters(t *testing.T) {
	cfgOff := ICPlus(4)
	cfgOff.RuntimeFilters = true
	cfgOn := cfgOff
	cfgOn.PlanCacheSize = 16
	off := setupEmployees(t, cfgOff)
	on := setupEmployees(t, cfgOn)
	q := `SELECT e.name, d.dname FROM emp e, dept d WHERE e.dept_id = d.dept_id AND e.salary > 1900`
	want, err := off.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := on.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := on.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if exactRows(cold) != exactRows(want) || exactRows(hot) != exactRows(want) {
		t.Fatal("runtime-filtered results differ cache on/off")
	}
	if hot.Stats.FiltersBuilt != want.Stats.FiltersBuilt {
		t.Fatalf("hot run built %d filters, cache-off built %d",
			hot.Stats.FiltersBuilt, want.Stats.FiltersBuilt)
	}
}

// TestPlanCacheWithGovernance checks cached executions still pass through
// admission control and charge the memory pool.
func TestPlanCacheWithGovernance(t *testing.T) {
	cfg := ICPlus(4)
	cfg.PlanCacheSize = 16
	cfg.MaxConcurrentQueries = 2
	cfg.MemoryBudgetBytes = 64 << 20
	e := setupEmployees(t, cfg)
	q := `SELECT dept_id, COUNT(*), SUM(salary) FROM emp GROUP BY dept_id`
	var hot *Result
	for i := 0; i < 3; i++ {
		res, err := e.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		hot = res
	}
	if !hot.Stats.PlanningSkipped {
		t.Fatal("expected cached execution")
	}
	if hot.Stats.MemPeakBytes <= 0 {
		t.Fatal("cached execution did not reserve memory against the pool")
	}
}

// TestPlanCacheConcurrentHammer fires 16 goroutines at one digest on a
// fresh engine and requires: exactly one planning pass (singleflight),
// byte-identical rows everywhere, and no goroutine leak. Run under -race
// this also exercises the cache's synchronization.
func TestPlanCacheConcurrentHammer(t *testing.T) {
	cfg := ICPlus(4)
	cfg.PlanCacheSize = 8
	e := setupEmployees(t, cfg)
	before := runtime.NumGoroutine()

	const workers, iters = 16, 5
	q := `SELECT dept_id, COUNT(*) AS cnt, SUM(salary) FROM emp GROUP BY dept_id`
	texts := make([][iters]string, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, err := e.Query(q)
				if err != nil {
					errs[w] = err
					return
				}
				texts[w][i] = exactRows(res)
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	want := texts[0][0]
	for w := range texts {
		for i := range texts[w] {
			if texts[w][i] != want {
				t.Fatalf("worker %d iter %d: rows differ", w, i)
			}
		}
	}
	stats, enabled := e.PlanCacheStats()
	if !enabled {
		t.Fatal("plan cache should be enabled")
	}
	if stats.Misses != 1 {
		t.Fatalf("planning ran %d times for one digest, want exactly 1", stats.Misses)
	}
	if want := uint64(workers*iters - 1); stats.Hits != want {
		t.Fatalf("hits = %d, want %d", stats.Hits, want)
	}
	// Goroutine-leak check: allow the runtime a moment to retire workers.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPlanCacheInvalidation checks DDL and ANALYZE bump the catalog
// version and force a replan, while results stay correct throughout.
func TestPlanCacheInvalidation(t *testing.T) {
	cfg := ICPlus(2)
	cfg.PlanCacheSize = 16
	e := setupEmployees(t, cfg)
	q := `SELECT id, name FROM emp WHERE salary > 1500`

	r1, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.PlanningSkipped {
		t.Fatal("first execution cannot be a cache hit")
	}
	r2, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Stats.PlanningSkipped {
		t.Fatal("second execution should hit the cache")
	}

	mustExec(t, e, `CREATE INDEX emp_salary ON emp (salary)`)
	r3, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Stats.PlanningSkipped {
		t.Fatal("CREATE INDEX must invalidate the cached plan")
	}
	r4, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !r4.Stats.PlanningSkipped {
		t.Fatal("replanned entry should be cached again")
	}

	if err := e.Analyze(); err != nil {
		t.Fatal(err)
	}
	r5, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if r5.Stats.PlanningSkipped {
		t.Fatal("ANALYZE must invalidate the cached plan")
	}

	base := exactRows(r1)
	for i, r := range []*Result{r2, r3, r4, r5} {
		if exactRows(r) != base {
			t.Fatalf("run %d: rows changed across invalidations", i+2)
		}
	}
}

// TestPreparedStatements covers parameter typing and coercion (int,
// float, string, date), re-execution with different arguments, and parity
// with inline literals — with the engine plan cache both off and on.
func TestPreparedStatements(t *testing.T) {
	for _, cacheSize := range []int{0, 16} {
		cfg := ICPlus(4)
		cfg.PlanCacheSize = cacheSize
		e := setupEmployees(t, cfg)

		stmt, err := e.Prepare(`SELECT id, name FROM emp WHERE salary > ? AND dept_id = ?`)
		if err != nil {
			t.Fatalf("cache=%d: Prepare: %v", cacheSize, err)
		}
		if stmt.NumParams() != 2 {
			t.Fatalf("NumParams = %d, want 2", stmt.NumParams())
		}
		res, err := stmt.Query(types.NewFloat(1500), types.NewInt(2))
		if err != nil {
			t.Fatalf("cache=%d: Query: %v", cacheSize, err)
		}
		if !res.Stats.PlanningSkipped {
			t.Errorf("cache=%d: prepared execution should reuse the Prepare-time plan", cacheSize)
		}
		want, err := e.Query(`SELECT id, name FROM emp WHERE salary > 1500 AND dept_id = 2`)
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, "prepared float/int", want.Rows, res.Rows)

		// Integer argument against a DOUBLE column: coerced via the
		// bind-time type hint.
		res2, err := stmt.Query(types.NewInt(1900), types.NewInt(0))
		if err != nil {
			t.Fatal(err)
		}
		want2, err := e.Query(`SELECT id, name FROM emp WHERE salary > 1900 AND dept_id = 0`)
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, "prepared int->float coercion", want2.Rows, res2.Rows)
		if len(res2.Rows) == len(res.Rows) {
			t.Fatal("different arguments should select different rows")
		}

		// String and date parameters; the date is supplied as a string and
		// coerced through the DATE hint from the comparison.
		stmt2, err := e.Prepare(`SELECT name FROM emp WHERE hired < ? AND name <> ?`)
		if err != nil {
			t.Fatal(err)
		}
		res3, err := stmt2.Query(types.NewString("1995-01-01"), types.NewString("emp000"))
		if err != nil {
			t.Fatal(err)
		}
		want3, err := e.Query(`SELECT name FROM emp WHERE hired < DATE '1995-01-01' AND name <> 'emp000'`)
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, "prepared string->date coercion", want3.Rows, res3.Rows)
		if len(res3.Rows) == 0 {
			t.Fatal("date-parameter query should match rows")
		}
	}
}

// TestParameterErrors covers the rejection paths: executing parameterized
// SQL without arguments, argument-count mismatches, and parameters where
// the dialect cannot accept them.
func TestParameterErrors(t *testing.T) {
	e := setupEmployees(t, ICPlus(2))

	if _, err := e.Exec(`SELECT id FROM emp WHERE salary > ?`); err == nil ||
		!strings.Contains(err.Error(), "parameter") {
		t.Fatalf("Exec of parameterized query: err = %v, want parameter error", err)
	}

	stmt, err := e.Prepare(`SELECT id FROM emp WHERE salary > ?`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Query(); err == nil {
		t.Fatal("Query with missing argument should fail")
	}
	if _, err := stmt.Query(types.NewFloat(1), types.NewFloat(2)); err == nil {
		t.Fatal("Query with excess arguments should fail")
	}

	if _, err := e.Exec(`INSERT INTO dept VALUES (99, ?)`); err == nil {
		t.Fatal("INSERT with a parameter should fail")
	}
	if _, err := e.Prepare(`SELECT name FROM emp WHERE name LIKE ?`); err == nil {
		t.Fatal("parameterized LIKE pattern should fail at bind time")
	}
	if _, err := e.Prepare(`CREATE TABLE x (a BIGINT PRIMARY KEY)`); err == nil {
		t.Fatal("Prepare of a non-SELECT should fail")
	}
}

// TestExplainAnalyzeSharesPlanCache checks EXPLAIN ANALYZE executes
// through the cache (the digest strips the EXPLAIN ANALYZE prefix) and
// that the cache counters surface in engine metrics.
func TestExplainAnalyzeSharesPlanCache(t *testing.T) {
	cfg := ICPlus(2)
	cfg.PlanCacheSize = 16
	e := setupEmployees(t, cfg)
	q := `SELECT dept_id, COUNT(*) FROM emp GROUP BY dept_id`
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, e, "EXPLAIN ANALYZE "+q)
	if !res.Stats.PlanningSkipped {
		t.Fatal("EXPLAIN ANALYZE should share the plain query's cache entry")
	}
	if res.PlanText == "" {
		t.Fatal("EXPLAIN ANALYZE returned no plan text")
	}
	snap := e.Metrics()
	if snap.Counters["plan_cache_hits_total"] < 1 {
		t.Fatalf("plan_cache_hits_total = %v, want >= 1", snap.Counters["plan_cache_hits_total"])
	}
	if snap.Counters["plan_cache_misses_total"] < 1 {
		t.Fatalf("plan_cache_misses_total = %v, want >= 1", snap.Counters["plan_cache_misses_total"])
	}
}
